"""Sub-tile memory allocation heuristic (paper Section V-C).

Given a level-``n+1`` tile, ``allocate`` finds level-``n`` sub-tile shapes
such that ``Tmin <= Tn <= Tn+1``, the summed footprints respect the buffer
(policy-aware: static partitions or bank-granular sharing), and ``f_reuse``
— the ratio of compute per byte filled across the boundary — is maximised.

The candidate generator follows the paper: for a D-dimensional tile it
proposes the ``2^D`` corners where each dimension is at its minimum or
maximum, which we extend with geometric midpoints and a greedy
"halve-the-biggest-footprint" ladder so that layers whose corners are all
infeasible still allocate well.
"""

from __future__ import annotations

import itertools
import math

from repro.arch.accelerator import AcceleratorConfig
from repro.core.access_model import boundary_fill_profile
from repro.core.dims import ALL_DIMS, Dim
from repro.core.layer import ConvLayer
from repro.core.loopnest import LoopOrder
from repro.core.tiling import TileShape


def f_reuse(
    layer: ConvLayer,
    parent: TileShape,
    child: TileShape,
    inner_order: LoopOrder,
    arch: AcceleratorConfig,
) -> float:
    """Compute per fill-byte across the boundary (higher is better).

    The paper's ``freuse`` "calculates the ratio of buffer fills (from a
    higher level buffer) to reads and updates (from lower levels)"; we score
    the equivalent compute-per-byte so bigger parents aren't penalised.
    """
    profile = boundary_fill_profile(layer, parent, child, inner_order, arch.precision)
    fill_bytes = sum(bytes_ for _, bytes_ in profile.values())
    return parent.maccs(layer) / max(fill_bytes, 1)


def _mid(lo: int, hi: int) -> int:
    """Geometric midpoint, biased up, clamped to [lo, hi]."""
    return max(lo, min(hi, round(math.sqrt(lo * hi))))


def _seed_candidates(
    parent: TileShape, cap: TileShape | None
) -> tuple[dict[Dim, tuple[int, int]], set[tuple[int, ...]]]:
    """Per-dim (min, max) bounds plus the corner/midpoint candidate seed.

    One implementation feeds both the scalar and the columnar
    :func:`candidate_sub_tiles` paths, so the enumerated set — and its
    insertion sequence, which fixes the downstream tie-break order —
    cannot drift between them.  Only the halving ladder extends this seed,
    and it is path-specific solely in *how* the footprint gradients are
    computed.
    """
    dims = list(ALL_DIMS)
    bounds = {
        dim: (
            1,
            min(parent.extent(dim), cap.extent(dim) if cap else parent.extent(dim)),
        )
        for dim in dims
    }
    candidates: set[tuple[int, ...]] = set()

    # 2^D corners (Section V-C).
    for mask in itertools.product((0, 1), repeat=len(dims)):
        candidates.add(tuple(bounds[dim][bit] for dim, bit in zip(dims, mask)))

    # Geometric midpoints: all-mid, and each dim at max with others mid.
    mid = tuple(_mid(*bounds[dim]) for dim in dims)
    candidates.add(mid)
    for i, dim in enumerate(dims):
        boosted = list(mid)
        boosted[i] = bounds[dim][1]
        candidates.add(tuple(boosted))
    return bounds, candidates


def _tile_columns(tiles: list[TileShape]):
    """(5, N) int64 columns of a tile list (ALL_DIMS order)."""
    import numpy as np

    return np.array(
        [
            [tile.w for tile in tiles],
            [tile.h for tile in tiles],
            [tile.c for tile in tiles],
            [tile.k for tile in tiles],
            [tile.f for tile in tiles],
        ],
        dtype=np.int64,
    )


def _f_reuse_scores(
    layer: ConvLayer,
    parents,  #: one TileShape or a list matching ``children``
    children: list[TileShape],
    inner_order: LoopOrder,
    arch: AcceleratorConfig,
):
    """Columnar :func:`f_reuse` over many (parent, child) pairs.

    Same equations through :func:`repro.core.batch.boundary_fill_bytes_sum`;
    scores are bit-identical to calling :func:`f_reuse` per pair.
    """
    import numpy as np

    from repro.core.batch import boundary_fill_bytes_sum

    child_cols = _tile_columns(children)
    if isinstance(parents, TileShape):
        parent_cols = _tile_columns([parents])
        maccs = parents.maccs(layer)
    else:
        parent_cols = _tile_columns(list(parents))
        maccs = np.array([p.maccs(layer) for p in parents], dtype=np.int64)
    fill_bytes = boundary_fill_bytes_sum(
        layer, arch.precision, parent_cols, child_cols, inner_order
    )
    return maccs / np.maximum(fill_bytes, 1)


def candidate_sub_tiles(
    layer: ConvLayer,
    arch: AcceleratorConfig,
    level_index: int,
    parent: TileShape,
    *,
    cap: TileShape | None = None,
    vectorize: bool = False,
    memo: dict | None = None,
) -> list[TileShape]:
    """Corner + midpoint + halving-ladder candidates, capacity-filtered.

    ``cap`` bounds each dimension's maximum from above; the search uses it
    to guarantee enough sub-tiles exist along parallelised dims for every
    PE/cluster to receive work (tile sizes and parallelism are co-designed,
    Section V-A's joint configuration vector).

    ``vectorize=True`` runs the columnar variant (same candidates, same
    order); since the result depends only on ``(level_index, parent,
    cap)``, an optional ``memo`` dict shares it across the inner-order
    loop of a search.
    """
    if vectorize:
        key = (level_index, parent, cap)
        if memo is not None and key in memo:
            return memo[key]
        result = _candidate_sub_tiles_columnar(
            layer, arch, level_index, parent, cap
        )
        if memo is not None:
            memo[key] = result
        return result
    dims = list(ALL_DIMS)
    bounds, candidates = _seed_candidates(parent, cap)

    # Halving ladder: from the largest allowed shape, repeatedly halve the
    # dimension contributing most footprint until the tile fits.
    current = {dim: bounds[dim][1] for dim in dims}
    for _ in range(40):
        tile = TileShape.from_mapping(current)
        candidates.add(tuple(current[d] for d in dims))
        if arch.tile_fits(level_index, layer, tile):
            break
        heaviest = max(
            dims,
            key=lambda d: _footprint_gradient(layer, tile, d, arch),
        )
        if current[heaviest] == 1:
            break
        current[heaviest] = math.ceil(current[heaviest] / 2)

    feasible = []
    for extents in candidates:
        tile = TileShape.from_mapping(dict(zip(dims, extents)))
        if arch.tile_fits(level_index, layer, tile):
            feasible.append(tile)
    return feasible


def _candidate_sub_tiles_columnar(
    layer: ConvLayer,
    arch: AcceleratorConfig,
    level_index: int,
    parent: TileShape,
    cap: TileShape | None,
) -> list[TileShape]:
    """Columnar twin of :func:`candidate_sub_tiles`.

    Shares the corner/midpoint seed (and therefore the set insertion
    sequence that fixes the downstream tie-break order) through
    :func:`_seed_candidates`, then batches the footprint-gradient and
    capacity checks instead of probing tile by tile.
    """
    import numpy as np

    from repro.core.batch import tile_bytes_columns, tile_fits_mask

    dims = list(ALL_DIMS)
    bounds, candidates = _seed_candidates(parent, cap)

    # Halving ladder, with all five per-dim footprint gradients of one
    # step computed in a single columnar footprint evaluation.
    current = [bounds[dim][1] for dim in dims]
    precision = arch.precision
    for _ in range(40):
        tile = TileShape(*current)
        candidates.add(tuple(current))
        if arch.tile_fits(level_index, layer, tile):
            break
        probes = np.empty((5, 6), dtype=np.int64)
        probes[:, 0] = current
        for d in range(5):
            probes[:, d + 1] = current
            probes[d, d + 1] = -(-current[d] // 2)
        bytes_by_type = tile_bytes_columns(layer, precision, probes)
        totals = sum(bytes_by_type[dt] for dt in bytes_by_type)
        gradients = [
            -1 if current[d] == 1 else int(totals[0] - totals[d + 1])
            for d in range(5)
        ]
        heaviest = int(np.argmax(gradients))  # first max, like max(dims, ...)
        if current[heaviest] == 1:
            break
        current[heaviest] = math.ceil(current[heaviest] / 2)

    tiles = [TileShape(*extents) for extents in candidates]
    fits = tile_fits_mask(arch, level_index, layer, _tile_columns(tiles))
    return [tile for tile, ok in zip(tiles, fits) if ok]


def _footprint_gradient(
    layer: ConvLayer, tile: TileShape, dim: Dim, arch: AcceleratorConfig
) -> int:
    """Bytes freed by halving ``dim`` — used to pick what to shrink."""
    if tile.extent(dim) == 1:
        return -1
    halved = TileShape.from_mapping(
        {d: (math.ceil(tile.extent(d) / 2) if d is dim else tile.extent(d))
         for d in ALL_DIMS}
    )
    return tile.total_bytes(layer, arch.precision) - halved.total_bytes(
        layer, arch.precision
    )


def allocate_level(
    layer: ConvLayer,
    arch: AcceleratorConfig,
    level_index: int,
    parent: TileShape,
    inner_order: LoopOrder,
    *,
    keep: int = 6,
    cap: TileShape | None = None,
    vectorize: bool = False,
    memo: dict | None = None,
) -> list[TileShape]:
    """Top-``keep`` sub-tile shapes for one level by ``f_reuse`` score.

    With ``vectorize=True`` all candidates are scored through one columnar
    boundary-traffic evaluation; scores (and therefore the stable
    descending order) are identical to the per-tile path.
    """
    feasible = candidate_sub_tiles(
        layer, arch, level_index, parent, cap=cap, vectorize=vectorize,
        memo=memo,
    )
    if not feasible:
        raise ValueError(
            f"no feasible sub-tile at level {level_index} of {arch.name} "
            f"for {layer.name} (parent {parent.describe()})"
        )
    if vectorize:
        scores = _f_reuse_scores(layer, parent, feasible, inner_order, arch)
        ranked = sorted(
            range(len(feasible)), key=scores.__getitem__, reverse=True
        )
        scored = [feasible[i] for i in ranked]
    else:
        scored = sorted(
            feasible,
            key=lambda tile: f_reuse(layer, parent, tile, inner_order, arch),
            reverse=True,
        )
    return scored[:keep]


def parallel_caps(
    parent: TileShape, degrees: dict[Dim, int]
) -> TileShape:
    """Largest child tile leaving one sub-tile per parallel worker.

    With ``degrees[d]`` workers splitting the parent along ``d``, the child
    extent must not exceed ``ceil(parent / degree)`` or some workers idle.
    """
    return TileShape.from_mapping(
        {
            dim: max(1, math.ceil(parent.extent(dim) / degrees.get(dim, 1)))
            for dim in ALL_DIMS
        }
    )


def allocate_hierarchy(
    layer: ConvLayer,
    arch: AcceleratorConfig,
    last_level_tile: TileShape,
    inner_order: LoopOrder,
    *,
    keep_per_level: int = 4,
    level_degrees: tuple[dict[Dim, int], ...] | None = None,
    vectorize: bool = False,
    candidate_memo: dict | None = None,
) -> list[tuple[TileShape, ...]]:
    """Candidate full hierarchies below a chosen last-level tile.

    Called level by level from ``N-1`` down to 0 as in the paper; at each
    level the best few allocations are kept and expanded (beam search).
    ``level_degrees[i]`` gives the parallel split applied when tiles of
    level ``i`` are distributed (clusters at the middle level, PEs at the
    innermost), which caps tile extents so every worker gets a sub-tile.

    ``vectorize=True`` runs the columnar twin: identical beams (the
    equivalence argument is spelled out in
    :func:`_allocate_hierarchy_columnar`), one batched ``f_reuse``
    evaluation per level instead of one per candidate.
    """
    if vectorize:
        return _allocate_hierarchy_columnar(
            layer, arch, last_level_tile, inner_order,
            keep_per_level=keep_per_level, level_degrees=level_degrees,
            candidate_memo=candidate_memo,
        )
    beams: list[tuple[TileShape, ...]] = [(last_level_tile,)]
    for level_index in range(1, arch.num_levels):
        degrees = None
        if level_degrees is not None:
            degrees = level_degrees[level_index]
        new_beams: list[tuple[TileShape, ...]] = []
        for beam in beams:
            parent = beam[-1]
            cap = parallel_caps(parent, degrees) if degrees else None
            try:
                tiles = allocate_level(
                    layer, arch, level_index, parent, inner_order,
                    keep=keep_per_level, cap=cap,
                )
            except ValueError:
                continue
            for tile in tiles:
                new_beams.append(beam + (tile.clipped(parent),))
        if not new_beams:
            raise ValueError(
                f"no feasible allocation below {last_level_tile.describe()} "
                f"for {layer.name} on {arch.name}"
            )
        # Keep the globally best few beams by last-boundary f_reuse.
        new_beams.sort(
            key=lambda b: f_reuse(layer, b[-2], b[-1], inner_order, arch),
            reverse=True,
        )
        beams = new_beams[: max(keep_per_level, 2)]
    return beams


def _allocate_hierarchy_columnar(
    layer: ConvLayer,
    arch: AcceleratorConfig,
    last_level_tile: TileShape,
    inner_order: LoopOrder,
    *,
    keep_per_level: int,
    level_degrees: tuple[dict[Dim, int], ...] | None,
    candidate_memo: dict | None,
) -> list[tuple[TileShape, ...]]:
    """Columnar twin of :func:`allocate_hierarchy` — identical beams.

    Per level, every beam's candidate sub-tiles are scored through ONE
    batched ``f_reuse`` evaluation; candidates never exceed their parent
    (the generator bounds them by it), so ``tile.clipped(parent) == tile``
    and the per-candidate scores double as the beam-ranking scores the
    scalar path recomputes.  Ranking uses the same stable descending
    sorts, so beam contents and order match the scalar path exactly.
    """
    beams: list[tuple[TileShape, ...]] = [(last_level_tile,)]
    for level_index in range(1, arch.num_levels):
        degrees = None
        if level_degrees is not None:
            degrees = level_degrees[level_index]
        entries_beam: list[int] = []
        entries_parent: list[TileShape] = []
        entries_tile: list[TileShape] = []
        for beam_idx, beam in enumerate(beams):
            parent = beam[-1]
            cap = parallel_caps(parent, degrees) if degrees else None
            candidates = candidate_sub_tiles(
                layer, arch, level_index, parent, cap=cap, vectorize=True,
                memo=candidate_memo,
            )
            for tile in candidates:
                entries_beam.append(beam_idx)
                entries_parent.append(parent)
                entries_tile.append(tile)
        if not entries_tile:
            raise ValueError(
                f"no feasible allocation below {last_level_tile.describe()} "
                f"for {layer.name} on {arch.name}"
            )
        scores = _f_reuse_scores(
            layer, entries_parent, entries_tile, inner_order, arch
        )

        # Top-keep per beam (allocate_level), in beam order, then the
        # global stable sort by score (the scalar beam ranking).
        chosen: list[int] = []
        for beam_idx in range(len(beams)):
            members = [j for j, b in enumerate(entries_beam) if b == beam_idx]
            members.sort(key=scores.__getitem__, reverse=True)
            chosen.extend(members[:keep_per_level])
        chosen.sort(key=scores.__getitem__, reverse=True)
        beams = [
            beams[entries_beam[j]] + (entries_tile[j].clipped(entries_parent[j]),)
            for j in chosen[: max(keep_per_level, 2)]
        ]
    return beams
