"""repro: a full reproduction of *Morph: Flexible Acceleration for 3D
CNN-Based Video Understanding* (Hegde et al., MICRO 2018).

The package models the Morph accelerator, its inflexible baseline and an
Eyeriss-style 2D comparison point, the per-layer configuration optimizer,
and the analytic traffic/energy/performance models the paper's evaluation
is built on — plus functional simulators that validate them.

Quick start::

    from repro import morph, c3d, LayerOptimizer, OptimizerOptions

    layer = c3d().layers[0]
    result = LayerOptimizer(morph(), OptimizerOptions.fast()).optimize(layer)
    print(result.best.describe())

See ``examples/`` for runnable walkthroughs and
``python -m repro.experiments.runner --all`` to regenerate every paper
figure and table.
"""

from repro.arch.accelerator import (
    AcceleratorConfig,
    eyeriss_like,
    morph,
    morph_base,
)
from repro.core.access_model import TrafficReport, compute_traffic
from repro.core.dataflow import Dataflow, Parallelism
from repro.core.dims import DataType, Dim
from repro.core.evaluate import Evaluation, evaluate
from repro.core.layer import ConvLayer
from repro.core.loopnest import LoopOrder
from repro.core.tiling import Precision, TileHierarchy, TileShape
from repro.optimizer.config_store import (
    ConfigStore,
    LocalDirectoryStore,
    MemoryStore,
    ShardedStore,
)
from repro.optimizer.engine import (
    EngineStats,
    OptimizerEngine,
    optimize_layer,
    set_engine_defaults,
)
from repro.optimizer.search import (
    LayerOptimizer,
    NetworkResult,
    OptimizerOptions,
    clear_cache,
    optimize_network,
)
from repro.workloads import (
    alexnet,
    build_network,
    c3d,
    c3d_dilated,
    i3d,
    inception,
    network_names,
    resnet3d50,
    resnet50,
    set_build_defaults,
    two_stream,
)

__version__ = "1.0.0"

__all__ = [
    "AcceleratorConfig",
    "ConfigStore",
    "ConvLayer",
    "Dataflow",
    "DataType",
    "Dim",
    "EngineStats",
    "Evaluation",
    "LayerOptimizer",
    "LocalDirectoryStore",
    "LoopOrder",
    "MemoryStore",
    "NetworkResult",
    "OptimizerEngine",
    "OptimizerOptions",
    "Parallelism",
    "Precision",
    "ShardedStore",
    "TileHierarchy",
    "TileShape",
    "TrafficReport",
    "alexnet",
    "build_network",
    "c3d",
    "c3d_dilated",
    "clear_cache",
    "compute_traffic",
    "evaluate",
    "eyeriss_like",
    "i3d",
    "inception",
    "morph",
    "morph_base",
    "network_names",
    "optimize_layer",
    "optimize_network",
    "resnet3d50",
    "resnet50",
    "set_build_defaults",
    "set_engine_defaults",
    "two_stream",
]
