"""repro: a full reproduction of *Morph: Flexible Acceleration for 3D
CNN-Based Video Understanding* (Hegde et al., MICRO 2018).

The package models the Morph accelerator, its inflexible baseline and an
Eyeriss-style 2D comparison point, the per-layer configuration optimizer,
and the analytic traffic/energy/performance models the paper's evaluation
is built on — plus functional simulators that validate them.

Quick start — the :class:`Session` front door owns the full engine
configuration (parallelism, cache dir/backend, vectorize, frames, ...)
as one immutable, serializable :class:`SessionConfig` value::

    from repro import Session, SessionConfig, morph, OptimizerOptions

    config = SessionConfig(parallelism=4, cache_dir="~/.cache/repro")
    with Session(config) as session:
        layer = session.build_network("c3d").layers[0]
        result = session.optimize_layer(layer, morph(), OptimizerOptions.fast())
        print(result.best.describe())

        sweep = session.sweep(["c3d", "i3d"])        # per-network results
        print(sweep.describe())                       # + merged cache stats

Configs layer with documented precedence — explicit kwargs beat dict/file
values (:meth:`SessionConfig.from_dict` / :meth:`SessionConfig.from_file`,
TOML or JSON) beat ``$REPRO_*`` environment variables beat built-in
defaults (:meth:`SessionConfig.resolve`).  Inside ``with session:`` every
legacy entry point resolves through the session, so two sessions with
different backends or vectorize settings run concurrently in one process
with bit-identical results to the global-default paths.

For long-lived multi-tenant serving, :meth:`Session.serve` opens an
asyncio :class:`ServeEngine` (request coalescing, per-tenant quotas,
backpressure, deadline-to-``budget_ms`` SLOs) — see :mod:`repro.serve`
and ``examples/serve_quickstart.py``.

Deprecated: :func:`set_engine_defaults` (process-wide mutable state);
scope a :class:`Session` instead.  The module-level
:func:`optimize_network` / :func:`optimize_layer` remain supported shims
that route through the currently scoped session.

See ``examples/`` for runnable walkthroughs and
``python -m repro.experiments.runner --all`` to regenerate every paper
figure and table.

The codebase's cross-cutting contracts — kernel purity, scoped config,
cache-signature completeness, atomic store writes, determinism — are
catalogued in ``docs/INVARIANTS.md`` and enforced statically by
``python -m repro.lint`` (see :mod:`repro.lint`).
"""

from repro.api import (
    Session,
    SessionConfig,
    SweepEntry,
    SweepResult,
    current_session,
    default_session,
)
from repro.arch.accelerator import (
    AcceleratorConfig,
    eyeriss_like,
    morph,
    morph_base,
)
from repro.core.access_model import TrafficReport, compute_traffic
from repro.core.dataflow import Dataflow, Parallelism
from repro.core.dims import DataType, Dim
from repro.core.evaluate import Evaluation, evaluate
from repro.core.layer import ConvLayer
from repro.core.loopnest import LoopOrder
from repro.core.tiling import Precision, TileHierarchy, TileShape
from repro.optimizer.config_store import (
    ConfigStore,
    LocalDirectoryStore,
    MemoryStore,
    ShardedStore,
)
from repro.optimizer.engine import (
    EngineStats,
    OptimizerEngine,
    optimize_layer,
    set_engine_defaults,
)
from repro.optimizer.search import (
    LayerOptimizer,
    NetworkResult,
    OptimizerOptions,
    clear_cache,
    optimize_network,
)
from repro.serve import (
    ServeConfig,
    ServeEngine,
    ServeMetrics,
    ServeRejected,
    ServeRequest,
    ServeResult,
)
from repro.workloads import (
    alexnet,
    build_network,
    c3d,
    c3d_dilated,
    i3d,
    inception,
    network_names,
    resnet3d50,
    resnet50,
    set_build_defaults,
    two_stream,
)

__version__ = "1.0.0"

__all__ = [
    "AcceleratorConfig",
    "ConfigStore",
    "ConvLayer",
    "Dataflow",
    "DataType",
    "Dim",
    "EngineStats",
    "Evaluation",
    "LayerOptimizer",
    "LocalDirectoryStore",
    "LoopOrder",
    "MemoryStore",
    "NetworkResult",
    "OptimizerEngine",
    "OptimizerOptions",
    "Parallelism",
    "Precision",
    "ServeConfig",
    "ServeEngine",
    "ServeMetrics",
    "ServeRejected",
    "ServeRequest",
    "ServeResult",
    "Session",
    "SessionConfig",
    "ShardedStore",
    "SweepEntry",
    "SweepResult",
    "TileHierarchy",
    "TileShape",
    "TrafficReport",
    "alexnet",
    "build_network",
    "c3d",
    "c3d_dilated",
    "clear_cache",
    "compute_traffic",
    "current_session",
    "default_session",
    "evaluate",
    "eyeriss_like",
    "i3d",
    "inception",
    "morph",
    "morph_base",
    "network_names",
    "optimize_layer",
    "optimize_network",
    "resnet3d50",
    "resnet50",
    "set_build_defaults",
    "set_engine_defaults",
    "two_stream",
]
