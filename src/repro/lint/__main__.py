"""``python -m repro.lint`` — run the invariant checkers over the tree.

Exit status 0 when the tree is clean, 1 when any finding survives the
inline suppressions, 2 on usage errors (e.g. a path that does not
exist).  ``--format json`` emits the machine-readable report used by
tooling; ``--list-rules`` prints the registry with one-line contracts.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.lint import default_linter, render_json, render_text

DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples")


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based invariant checkers for the repro codebase "
            "(kernel purity, scoped config, signature completeness, "
            "atomic writes, determinism)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files or directories to check (default: the repo layout "
            f"{'/'.join(DEFAULT_PATHS)} — missing ones are skipped)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    args = parser.parse_args(argv)

    linter = default_linter()
    if args.list_rules:
        for rule in linter.rules:
            print(f"{rule.name}: {rule.description}")
        return 0

    if args.paths:
        paths = list(args.paths)
    else:
        # Default layout: lint whichever of the standard roots exist.
        from pathlib import Path

        paths = [p for p in DEFAULT_PATHS if Path(p).exists()]
        if not paths:
            print(
                "repro-lint: none of the default paths "
                f"({', '.join(DEFAULT_PATHS)}) exist here; pass paths "
                "explicitly",
                file=sys.stderr,
            )
            return 2

    try:
        diagnostics = linter.lint_paths(paths)
    except FileNotFoundError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(render_json(diagnostics))
    else:
        print(render_text(diagnostics))
    return 1 if diagnostics else 0


if __name__ == "__main__":
    sys.exit(main())
