"""repro.lint — AST-based invariant checkers for the repro codebase.

The optimizer/simulator stack rests on a handful of cross-cutting
contracts that ordinary tests cannot guard (they live *between* files:
a dataclass here, the signature function that must consume it there).
This package checks them statically:

=======================  ==============================================
rule                     contract
=======================  ==============================================
kernel-purity            ``*_kernel`` functions stay scalar/array-
                         agnostic so one body serves the scalar models,
                         the columnar engine and future compiled
                         backends
scoped-config            ``$REPRO_*`` is read only by the sanctioned
                         resolvers; no ``os.environ`` writes; module
                         state follows the ALL_CAPS registry convention
signature-completeness   every result-affecting dataclass field reaches
                         its cache key / env mapping or is explicitly
                         excluded
atomic-write             store modules persist via temp + ``os.replace``
determinism              no clocks, randomness or set-iteration order
                         in result-producing paths
=======================  ==============================================

Run it with ``python -m repro.lint [paths...]``; suppress a finding
inline with ``# repro-lint: disable=<rule>  # why``.  The contracts are
catalogued in docs/INVARIANTS.md.
"""

from __future__ import annotations

from repro.lint.diagnostics import (
    Diagnostic,
    render_json,
    render_text,
    sort_diagnostics,
)
from repro.lint.engine import (
    Linter,
    ModuleInfo,
    Rule,
    load_module,
    parse_suppressions,
    walk_paths,
)
from repro.lint.rules import ALL_RULES


def default_linter() -> Linter:
    """A :class:`Linter` loaded with the full registered rule set."""
    return Linter([rule() for rule in ALL_RULES])


__all__ = [
    "ALL_RULES",
    "Diagnostic",
    "Linter",
    "ModuleInfo",
    "Rule",
    "default_linter",
    "load_module",
    "parse_suppressions",
    "render_json",
    "render_text",
    "sort_diagnostics",
    "walk_paths",
]
