"""Diagnostics and reporters for the repro lint suite.

A :class:`Diagnostic` is one finding: which rule fired, where, and a
message explaining the violated contract.  Reporters render a batch of
findings as human-readable text (``path:line: [rule] message``, one per
line, sorted) or as a JSON document for tooling.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Iterable, Sequence


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    """One lint finding, anchored to a file and line."""

    rule: str
    path: str
    line: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def sort_diagnostics(
    diagnostics: Iterable[Diagnostic],
) -> list[Diagnostic]:
    return sorted(
        diagnostics, key=lambda d: (d.path, d.line, d.rule, d.message)
    )


def render_text(diagnostics: Sequence[Diagnostic]) -> str:
    """One line per finding plus a summary line."""
    ordered = sort_diagnostics(diagnostics)
    lines = [diag.format() for diag in ordered]
    count = len(ordered)
    noun = "finding" if count == 1 else "findings"
    lines.append(f"repro-lint: {count} {noun}")
    return "\n".join(lines)


def render_json(diagnostics: Sequence[Diagnostic]) -> str:
    """Machine-readable report (stable field order, sorted findings)."""
    payload = {
        "tool": "repro-lint",
        "findings": [
            dataclasses.asdict(diag)
            for diag in sort_diagnostics(diagnostics)
        ],
        "count": len(list(diagnostics)),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
