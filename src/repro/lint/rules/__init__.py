"""The repro lint rule set.

Each module in this package implements one contract checker; the
``ALL_RULES`` tuple is the canonical registry consumed by the CLI and
the tests.  Adding a rule means adding a module here, registering its
class, and documenting the contract it guards in docs/INVARIANTS.md.
"""

from __future__ import annotations

from repro.lint.rules.atomic_write import AtomicWriteRule
from repro.lint.rules.determinism import DeterminismRule
from repro.lint.rules.kernel_purity import KernelPurityRule
from repro.lint.rules.scoped_config import ScopedConfigRule
from repro.lint.rules.signature_completeness import (
    SignatureCompletenessRule,
)

ALL_RULES = (
    KernelPurityRule,
    ScopedConfigRule,
    SignatureCompletenessRule,
    AtomicWriteRule,
    DeterminismRule,
)

__all__ = [
    "ALL_RULES",
    "AtomicWriteRule",
    "DeterminismRule",
    "KernelPurityRule",
    "ScopedConfigRule",
    "SignatureCompletenessRule",
]
