"""kernel-purity: ``*_kernel`` functions stay scalar/array-agnostic.

The shared formula kernels (``input_extent_kernel``,
``energy_accumulation_kernel``, ...) are the single implementation behind
*both* execution paths: the scalar reference models call them with Python
ints/floats and the columnar batch pipeline calls them with NumPy columns.
ROADMAP item 3 additionally treats them as the lowering target for
compiled (numba) and GPU (CuPy) backends.  That only works while a kernel
is pure arithmetic over its arguments:

* **no numpy** — referencing ``np``/``numpy`` (array constructors, ufuncs)
  hard-wires one backend into code that must run under all of them;
* **no branching on arguments** — ``if x > 0:`` raises on an array column
  (ambiguous truth value) and silently de-vectorises under tracing
  backends; the idiom is arithmetic masking (``x * (x > 0)``), see
  ``clip_min0`` / ``minimum_kernel``;
* **no ``and``/``or``** — short-circuit evaluation is truthiness; use the
  elementwise ``&`` / ``|``;
* **no data-dependent ``while`` loops** — columns cannot drive a scalar
  loop condition;
* **no argument mutation** — callers share columns between candidates;
* **no module globals** — except other kernels, the sanctioned helper
  functions, class/enum references and ALL_CAPS structural constants
  (anything else is hidden state a compiled backend cannot capture);
* **no array-hostile builtins** — ``min``/``max``/``any``/``all``/
  ``bool``/``sorted`` have scalar-only or truthiness semantics.

Two backend-contract extensions (docs/INVARIANTS.md, "Kernel backends"):
the kernel-execution backend module (:mod:`repro.core.backend`) is
sanctioned *by path* — its wrappers (jitted dispatchers, guarded
fallbacks) are generated **from** the kernels, so the per-def purity
checks do not apply there — and a cross-module check flags any public
``*_kernel`` definition outside ``repro/core/`` that re-uses a core
kernel's name: backends and simulators must *lower* the shared formulas,
never fork their math under the same name.
"""

from __future__ import annotations

import ast
import builtins
from typing import Callable, Iterable, Iterator, Sequence

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import ModuleInfo, Rule, root_name

#: Non-kernel helpers kernels may call: each is itself scalar/array-
#: agnostic pure arithmetic (documented in docs/INVARIANTS.md).
SANCTIONED_HELPERS = frozenset(
    {"ceil_div", "clip_min0", "kernel_and_stride"}
)

#: Module-path suffixes exempt from the per-def purity checks: the
#: kernel-execution backend generates compiled wrappers *from* the
#: kernels (rebinding their globals, guarding JIT failures), which is
#: exactly the module machinery kernels themselves must not contain.
#: The :meth:`KernelPurityRule.finish` redefinition check still applies
#: to it — sanctioned to lower, not to fork.
SANCTIONED_BACKEND_MODULES = ("repro/core/backend.py",)

#: Path fragment marking the home of the shared formula kernels.
_CORE_FRAGMENT = "repro/core/"

#: Builtins whose semantics are structural, not value-dependent.
SAFE_BUILTINS = frozenset(
    {
        "range",
        "len",
        "enumerate",
        "zip",
        "reversed",
        "tuple",
        "list",
        "dict",
        "float",
        "int",
        "sum",
        "abs",
        "isinstance",
    }
)

#: Builtins that break on (or silently mis-handle) array arguments.
ARRAY_HOSTILE_BUILTINS = frozenset(
    {"min", "max", "any", "all", "bool", "sorted", "map", "filter"}
)

#: Method calls that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "clear",
        "update",
        "setdefault",
        "add",
        "discard",
        "sort",
        "reverse",
        "fill",
    }
)


def _parameters(func: ast.FunctionDef) -> set[str]:
    args = func.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return set(names)


def _local_names(func: ast.FunctionDef) -> set[str]:
    """Names bound inside the function body (targets, loop vars, defs)."""
    bound: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            bound.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not func:
                bound.add(node.name)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
    return bound


def _names_in(node: ast.AST) -> Iterator[str]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id


class KernelPurityRule(Rule):
    name = "kernel-purity"
    description = (
        "*_kernel functions must stay scalar/array-agnostic: no numpy, "
        "no branching on arguments, no and/or, no argument mutation, no "
        "module globals beyond kernels/sanctioned helpers/constants"
    )

    def check_module(self, module: ModuleInfo) -> Iterable[Diagnostic]:
        if any(
            module.display.endswith(suffix)
            for suffix in SANCTIONED_BACKEND_MODULES
        ):
            # The backend lowers kernels (globals rebinding, JIT guards);
            # its wrappers are generated from them, not kernels
            # themselves.  finish() still polices redefinitions.
            return []
        out: list[Diagnostic] = []
        for node in ast.walk(module.tree):
            if self._is_kernel_def(node):
                out.extend(self._check_kernel_def(module, node))
        return out

    def finish(
        self, modules: Sequence[ModuleInfo]
    ) -> Iterable[Diagnostic]:
        """Cross-module check: no ``*_kernel`` name forked outside core.

        The ``repro/core/`` kernels are the single source of the model
        math; every backend and simulator lowers *those* functions.  A
        same-named public ``*_kernel`` def in any other ``repro`` module
        is a fork waiting to drift — the compiled backend would silently
        lower different math than the scalar oracle checks.
        """
        def is_backend(module: ModuleInfo) -> bool:
            return any(
                module.display.endswith(suffix)
                for suffix in SANCTIONED_BACKEND_MODULES
            )

        core_defs: dict[str, str] = {}
        for module in modules:
            if _CORE_FRAGMENT not in module.display or is_backend(module):
                continue
            for node in ast.walk(module.tree):
                if self._is_kernel_def(node):
                    core_defs.setdefault(node.name, module.display)
        if not core_defs:
            return
        for module in modules:
            if "repro/" not in module.display:
                continue  # tests/benchmarks may stub kernels freely
            # The backend module sits under core/ but is a *consumer* of
            # the kernels (exempt from the per-def checks above), so the
            # redefinition check applies to it like any other module.
            if _CORE_FRAGMENT in module.display and not is_backend(module):
                continue
            for node in ast.walk(module.tree):
                if self._is_kernel_def(node) and node.name in core_defs:
                    yield Diagnostic(
                        rule=self.name,
                        path=module.display,
                        line=node.lineno,
                        message=(
                            f"{node.name}: redefines the core kernel "
                            f"from {core_defs[node.name]}; backends must "
                            "lower the shared kernel, never fork its "
                            "math — import it instead"
                        ),
                    )

    @staticmethod
    def _is_kernel_def(node: ast.AST) -> bool:
        """Public ``*_kernel`` function defs.  ``test_*`` functions and
        private ``_*`` helpers that merely end in ``_kernel`` are not
        lowering targets and stay exempt."""
        return (
            isinstance(node, ast.FunctionDef)
            and node.name.endswith("_kernel")
            and not node.name.startswith("test_")
            and not node.name.startswith("_")
        )

    def _check_kernel_def(
        self, module: ModuleInfo, func: ast.FunctionDef
    ) -> Iterator[Diagnostic]:
        params = _parameters(func)
        locals_ = _local_names(func)
        # Annotations are documentation, not behaviour: names inside them
        # (`x: np.ndarray`, `-> NumT`) never count against purity.
        annotation_nodes: set[int] = set()
        for sub in ast.walk(func):
            anns = []
            if isinstance(sub, ast.arg) and sub.annotation is not None:
                anns.append(sub.annotation)
            if (
                isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
                and sub.returns is not None
            ):
                anns.append(sub.returns)
            if isinstance(sub, ast.AnnAssign):
                anns.append(sub.annotation)
            for ann in anns:
                annotation_nodes.update(id(n) for n in ast.walk(ann))

        def diag(node: ast.AST, message: str) -> Diagnostic:
            return Diagnostic(
                rule=self.name,
                path=module.display,
                line=getattr(node, "lineno", func.lineno),
                message=f"{func.name}: {message}",
            )

        for node in ast.walk(func):
            if id(node) in annotation_nodes:
                continue
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                yield diag(
                    node,
                    "declares global/nonlocal state; kernels must be "
                    "pure functions of their arguments",
                )
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                yield diag(
                    node,
                    "imports inside a kernel; keep kernels free of "
                    "module machinery",
                )
            elif isinstance(node, ast.While):
                yield diag(
                    node,
                    "data-dependent `while` loop; columns cannot drive "
                    "a scalar loop condition",
                )
            elif isinstance(node, (ast.If, ast.IfExp)):
                offending = sorted(
                    set(_names_in(node.test)) & params
                )
                if offending:
                    yield diag(
                        node,
                        "branches on argument(s) "
                        f"{', '.join(offending)}; array truthiness is "
                        "ambiguous — use arithmetic masking "
                        "(`x * (x > 0)`) instead",
                    )
            elif isinstance(node, ast.BoolOp):
                yield diag(
                    node,
                    "uses `and`/`or` (short-circuit truthiness); use "
                    "the elementwise `&` / `|` operators",
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(
                        target, (ast.Subscript, ast.Attribute)
                    ) and root_name(target) in params:
                        yield diag(
                            node,
                            f"mutates argument {root_name(target)!r}; "
                            "callers share columns between candidates",
                        )
            elif isinstance(node, ast.Call):
                f = node.func
                if (
                    isinstance(f, ast.Attribute)
                    and f.attr in MUTATING_METHODS
                    and isinstance(f.value, ast.Name)
                    and f.value.id in params
                ):
                    yield diag(
                        node,
                        f"calls mutating method .{f.attr}() on argument "
                        f"{f.value.id!r}",
                    )
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Load
            ):
                yield from self._check_name(
                    node, params, locals_, diag
                )

    def _check_name(
        self,
        node: ast.Name,
        params: set[str],
        locals_: set[str],
        diag: "Callable[[ast.AST, str], Diagnostic]",
    ) -> Iterator[Diagnostic]:
        name = node.id
        if name in ("np", "numpy"):
            yield diag(
                node,
                "references numpy; kernels must run on Python scalars "
                "and array columns alike (the caller supplies arrays)",
            )
            return
        if name in params or name in locals_:
            return
        if name in ARRAY_HOSTILE_BUILTINS:
            yield diag(
                node,
                f"uses array-hostile builtin {name}(); use the "
                "elementwise kernel equivalents (e.g. minimum_kernel, "
                "clip_min0)",
            )
            return
        if (
            name.endswith("_kernel")
            or name in SANCTIONED_HELPERS
            or name in SAFE_BUILTINS
        ):
            return
        stripped = name.strip("_")
        if stripped and stripped == stripped.upper():
            return  # ALL_CAPS structural constant (ALL_DATA_TYPES, ...)
        if name[:1].isupper():
            return  # class / enum reference (DataType, TileShape, Dim)
        if name in dir(builtins):
            yield diag(
                node,
                f"uses builtin {name}(), which is not on the kernel "
                "safe-list; kernels are restricted to structural "
                "builtins so they stay lowerable",
            )
            return
        yield diag(
            node,
            f"reads module global {name!r}; kernels may only touch "
            "arguments, other *_kernel functions, sanctioned helpers "
            "and ALL_CAPS constants",
        )
