"""signature-completeness: every result-affecting field reaches its key.

The persistent config cache is only sound while the *signature* of a
search covers every input that can change its outcome.  The PR 2 dilation
change demonstrated the failure mode: adding ``dilation_*`` fields to
:class:`~repro.core.layer.ConvLayer` without threading them into
:func:`~repro.optimizer.config_store.layer_signature` would have recalled
stale pre-dilation records bit-for-bit wrong — it took a manual
``FORMAT_VERSION`` bump and review care.  This rule mechanises that care
by cross-referencing the AST of the dataclasses against the AST of the
functions that key them:

* **ConvLayer ↔ layer_signature** — every ConvLayer dataclass field must
  be read (``layer.<field>``) inside ``layer_signature``, or listed in
  the module-level ``LAYER_SIGNATURE_EXCLUDED`` frozenset next to it
  (with a comment justifying why the field cannot affect results).
* **OptimizerOptions / AcceleratorConfig ↔ repr()** — search signatures
  capture these through their dataclass ``repr``, so a field excluded
  from the repr is excluded from the cache key.  The only sanctioned
  exclusions are pure speed knobs, and those must be *consistently*
  excluded: ``repr=False`` requires ``compare=False`` (and vice versa),
  otherwise equality and the cache key disagree about what identity means.
* **SessionConfig ↔ _ENV_FIELDS** — every SessionConfig field must be
  materialisable from the environment (an ``_ENV_FIELDS`` entry) or
  explicitly listed in ``_ENV_EXCLUDED`` as deliberately env-invisible;
  otherwise ``SessionConfig.from_env`` silently drops configuration.
* **active_value(...) field names** — the scoped resolvers read session
  fields by string; a typo would silently resolve to ``None`` forever,
  so every literal must name a real SessionConfig field.

Stale entries (an excluded name that is no longer a field, an
``_ENV_FIELDS`` target that does not exist) are flagged too.
"""

from __future__ import annotations

import ast
from typing import Iterable, Sequence

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import ModuleInfo, Rule, string_constants

#: Dataclasses whose ``repr`` feeds ``search_signature`` directly.
REPR_SIGNATURE_CLASSES = ("OptimizerOptions", "AcceleratorConfig")


def _decorator_names(node: ast.ClassDef) -> set[str]:
    names = set()
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Attribute):
            names.add(target.attr)
        elif isinstance(target, ast.Name):
            names.add(target.id)
    return names


def _dataclass_fields(node: ast.ClassDef) -> list[ast.AnnAssign]:
    """The annotated field statements of a dataclass body (ClassVar and
    underscore names skipped)."""
    fields = []
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        if not isinstance(stmt.target, ast.Name):
            continue
        if stmt.target.id.startswith("_"):
            continue
        annotation = ast.dump(stmt.annotation)
        if "ClassVar" in annotation:
            continue
        fields.append(stmt)
    return fields


def _field_call_kwargs(value: ast.expr | None) -> dict[str, object] | None:
    """Keyword constants of a ``dataclasses.field(...)`` default, if any."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    name = func.attr if isinstance(func, ast.Attribute) else getattr(
        func, "id", ""
    )
    if name != "field":
        return None
    out: dict[str, object] = {}
    for kw in value.keywords:
        if kw.arg and isinstance(kw.value, ast.Constant):
            out[kw.arg] = kw.value.value
    return out


def _find_class(
    modules: Sequence[ModuleInfo], name: str
) -> tuple[ModuleInfo, ast.ClassDef] | None:
    for module in modules:
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef) and node.name == name:
                if "dataclass" in _decorator_names(node):
                    return module, node
    return None


def _find_function(
    modules: Sequence[ModuleInfo], name: str
) -> tuple[ModuleInfo, ast.FunctionDef] | None:
    for module in modules:
        for node in module.tree.body:
            if isinstance(node, ast.FunctionDef) and node.name == name:
                return module, node
    return None


def _module_constant_set(
    module: ModuleInfo, name: str
) -> set[str] | None:
    """String members of a module-level ``NAME = frozenset({...})``."""
    for node in module.tree.body:
        targets: list[ast.Name] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets = [t for t in node.targets if isinstance(t, ast.Name)]
            value = node.value
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            targets = [node.target]
            value = node.value
        if value is not None and any(t.id == name for t in targets):
            return string_constants(value)
    return None


class SignatureCompletenessRule(Rule):
    name = "signature-completeness"
    description = (
        "dataclass fields of ConvLayer / OptimizerOptions / "
        "AcceleratorConfig / SessionConfig must reach their signature or "
        "cache-key function, or be explicitly excluded"
    )

    def finish(
        self, modules: Sequence[ModuleInfo]
    ) -> Iterable[Diagnostic]:
        out: list[Diagnostic] = []
        out.extend(self._check_layer_signature(modules))
        for class_name in REPR_SIGNATURE_CLASSES:
            out.extend(self._check_repr_class(modules, class_name))
        session_fields = self._check_session_env(modules, out)
        out.extend(self._check_active_values(modules, session_fields))
        return out

    # -- ConvLayer <-> layer_signature ----------------------------------
    def _check_layer_signature(
        self, modules: Sequence[ModuleInfo]
    ) -> Iterable[Diagnostic]:
        found_class = _find_class(modules, "ConvLayer")
        found_func = _find_function(modules, "layer_signature")
        if found_class is None or found_func is None:
            return
        _, class_node = found_class
        func_module, func_node = found_func
        fields = {f.target.id for f in _dataclass_fields(class_node)}
        params = [a.arg for a in func_node.args.args] + [
            a.arg for a in func_node.args.posonlyargs
        ]
        layer_param = params[0] if params else "layer"
        consumed = {
            node.attr
            for node in ast.walk(func_node)
            if isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == layer_param
        }
        excluded = (
            _module_constant_set(func_module, "LAYER_SIGNATURE_EXCLUDED")
            or set()
        )
        for missing in sorted(fields - consumed - excluded):
            yield Diagnostic(
                rule=self.name,
                path=func_module.display,
                line=func_node.lineno,
                message=(
                    f"ConvLayer field {missing!r} is neither read by "
                    "layer_signature() nor listed in "
                    "LAYER_SIGNATURE_EXCLUDED — cached records would not "
                    "invalidate when it changes (bump FORMAT_VERSION and "
                    "thread it through, or exclude it with a "
                    "justification)"
                ),
            )
        for stale in sorted(excluded - fields):
            yield Diagnostic(
                rule=self.name,
                path=func_module.display,
                line=func_node.lineno,
                message=(
                    f"LAYER_SIGNATURE_EXCLUDED names {stale!r}, which is "
                    "not a ConvLayer field — remove the stale exclusion"
                ),
            )

    # -- repr-signature dataclasses -------------------------------------
    def _check_repr_class(
        self, modules: Sequence[ModuleInfo], class_name: str
    ) -> Iterable[Diagnostic]:
        found = _find_class(modules, class_name)
        if found is None:
            return
        module, class_node = found
        for field in _dataclass_fields(class_node):
            kwargs = _field_call_kwargs(field.value)
            if kwargs is None:
                continue  # plain default: participates in the repr
            in_repr = kwargs.get("repr", True)
            in_compare = kwargs.get("compare", True)
            if bool(in_repr) != bool(in_compare):
                yield Diagnostic(
                    rule=self.name,
                    path=module.display,
                    line=field.lineno,
                    message=(
                        f"{class_name}.{field.target.id}: repr={in_repr} "
                        f"but compare={in_compare} — the search signature "
                        "captures this class through repr(), so repr and "
                        "equality must agree (a speed knob needs both "
                        "repr=False and compare=False; a result-affecting "
                        "field needs neither)"
                    ),
                )

    # -- SessionConfig <-> _ENV_FIELDS ----------------------------------
    def _check_session_env(
        self, modules: Sequence[ModuleInfo], out: list[Diagnostic]
    ) -> set[str]:
        found = _find_class(modules, "SessionConfig")
        if found is None:
            return set()
        module, class_node = found
        fields = {f.target.id for f in _dataclass_fields(class_node)}
        env_targets = self._env_field_targets(module)
        if env_targets is None:
            return fields  # no _ENV_FIELDS table in this corpus slice
        excluded = _module_constant_set(module, "_ENV_EXCLUDED") or set()
        for missing in sorted(fields - env_targets - excluded):
            out.append(
                Diagnostic(
                    rule=self.name,
                    path=module.display,
                    line=class_node.lineno,
                    message=(
                        f"SessionConfig field {missing!r} has no "
                        "_ENV_FIELDS entry and is not listed in "
                        "_ENV_EXCLUDED — SessionConfig.from_env would "
                        "silently drop it (add a $REPRO_* mapping or an "
                        "explicit exclusion with a justification)"
                    ),
                )
            )
        for stale in sorted((env_targets | excluded) - fields):
            out.append(
                Diagnostic(
                    rule=self.name,
                    path=module.display,
                    line=class_node.lineno,
                    message=(
                        f"_ENV_FIELDS/_ENV_EXCLUDED names {stale!r}, "
                        "which is not a SessionConfig field — remove the "
                        "stale entry"
                    ),
                )
            )
        return fields

    @staticmethod
    def _env_field_targets(module: ModuleInfo) -> set[str] | None:
        """Field names targeted by the ``_ENV_FIELDS`` mapping literal."""
        for node in module.tree.body:
            targets: list[ast.Name] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets = [
                    t for t in node.targets if isinstance(t, ast.Name)
                ]
                value = node.value
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                targets = [node.target]
                value = node.value
            if not any(t.id == "_ENV_FIELDS" for t in targets):
                continue
            if not isinstance(value, ast.Dict):
                return set()
            out: set[str] = set()
            for entry in value.values:
                if (
                    isinstance(entry, ast.Tuple)
                    and entry.elts
                    and isinstance(entry.elts[0], ast.Constant)
                    and isinstance(entry.elts[0].value, str)
                ):
                    out.add(entry.elts[0].value)
            return out
        return None

    # -- active_value("...") literals ------------------------------------
    def _check_active_values(
        self, modules: Sequence[ModuleInfo], session_fields: set[str]
    ) -> Iterable[Diagnostic]:
        if not session_fields:
            return
        for module in modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                name = (
                    func.attr
                    if isinstance(func, ast.Attribute)
                    else getattr(func, "id", "")
                )
                if name != "active_value" or not node.args:
                    continue
                arg = node.args[0]
                if not (
                    isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)
                ):
                    continue
                if arg.value not in session_fields:
                    yield Diagnostic(
                        rule=self.name,
                        path=module.display,
                        line=node.lineno,
                        message=(
                            f"active_value({arg.value!r}) does not name "
                            "a SessionConfig field — the scoped resolver "
                            "would silently return None forever"
                        ),
                    )
