"""scoped-config: ``$REPRO_*`` reads and process-global state stay scoped.

PR 5's contextvar-scoped :class:`repro.api.Session` only delivers its
isolation guarantee — two differently configured sweeps in one process
never observing each other — while *no* module quietly reads ``$REPRO_*``
or mutates process-global state behind the session's back.  Configuration
must flow through the documented resolution chain (active session >
process defaults > environment > built-ins), which means:

* ``os.environ``/``os.getenv`` reads of ``REPRO_*`` variables are allowed
  only in the sanctioned resolvers: :mod:`repro.api` (the
  ``SessionConfig.from_env`` materialiser), the ``default_*`` resolvers
  of :mod:`repro.optimizer.engine` — including the kernel-backend pair
  ``default_kernel_backend`` / ``default_max_table_bytes``, the *only*
  sanctioned readers of ``$REPRO_KERNEL_BACKEND`` /
  ``$REPRO_MAX_TABLE_BYTES`` — and
  :func:`repro.workloads.networks.build_network` (the build-default
  resolver).  Anywhere else, read the active session instead.
* The serving namespace is scoped *by key*: ``$REPRO_SERVE_*`` reads
  live only in :mod:`repro.serve.config` (the ``ServeConfig.from_env``
  materialiser) — the general resolvers above are **not** allowed to
  read serving variables, and the serve resolver is not allowed to read
  any other ``$REPRO_*`` variable (it takes session configuration as a
  :class:`~repro.api.SessionConfig` value, never from the environment).
* Writes to ``os.environ`` (any variable) are flagged everywhere —
  mutating the process environment cannot be scoped or undone; tests use
  ``monkeypatch.setenv``.
* Module-level mutable containers inside the ``repro`` package must
  follow the sanctioned-registry convention: ALL_CAPS names (``_LAYER_MEMO``,
  ``_CACHE_STATS``, ``OBJECTIVES``, ``_REGISTRY``), which marks them as
  deliberate process-wide registries documented in docs/INVARIANTS.md and
  wired into :func:`repro.clear_cache` where they memoise results.  A
  lowercase module-level dict/list/set is almost always accidental shared
  state.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterable

_DiagFn = Callable[[ast.AST, str], None]

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import (
    ModuleInfo,
    Rule,
    call_path,
    enclosing_functions,
    is_all_caps,
)

#: (module-path suffix, enclosing-function predicate) pairs allowed to
#: read ``$REPRO_*`` directly.  ``None`` allows the whole module.
_ENV_READ_ALLOWED: tuple[tuple[str, object], ...] = (
    ("repro/api.py", None),
    ("repro/optimizer/engine.py", lambda fn: fn.startswith("default_")),
    ("repro/workloads/networks.py", lambda fn: fn == "build_network"),
)

#: The one module allowed to read the serving namespace — and *only*
#: that namespace: ``$REPRO_SERVE_*`` is scoped by key, not just by
#: path, so the general resolvers above cannot quietly grow serving
#: knobs and the serve resolver cannot quietly read session knobs.
_SERVE_ENV_PREFIX = "REPRO_SERVE_"
_SERVE_ENV_MODULE = "repro/serve/config.py"

_MUTABLE_FACTORIES = frozenset(
    {"dict", "list", "set", "defaultdict", "OrderedDict", "deque"}
)


def _is_environ(node: ast.expr) -> bool:
    return call_path(node) in ("os.environ", "environ")


class ScopedConfigRule(Rule):
    name = "scoped-config"
    description = (
        "$REPRO_* env reads only in the sanctioned resolvers; no "
        "os.environ writes; module-level mutable state follows the "
        "ALL_CAPS sanctioned-registry convention"
    )

    def check_module(self, module: ModuleInfo) -> Iterable[Diagnostic]:
        out: list[Diagnostic] = []
        parents = enclosing_functions(module.tree)

        def enclosing_name(node: ast.AST) -> str:
            owner = parents.get(node)
            return owner.name if owner is not None else ""

        def diag(node: ast.AST, message: str) -> None:
            out.append(
                Diagnostic(
                    rule=self.name,
                    path=module.display,
                    line=node.lineno,
                    message=message,
                )
            )

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                self._check_env_read(node, module, enclosing_name, diag)
                self._check_env_write_call(node, diag)
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                self._check_env_write_stmt(node, diag)
            elif (
                isinstance(node, ast.Subscript)
                and isinstance(node.ctx, ast.Load)
                and _is_environ(node.value)
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)
                and node.slice.value.startswith("REPRO_")
                and not self._read_allowed(
                    module, enclosing_name(node), node.slice.value
                )
            ):
                diag(
                    node,
                    f"reads ${node.slice.value} via os.environ[...] "
                    "outside the sanctioned resolvers; resolve through "
                    "the active Session / SessionConfig instead",
                )

        out.extend(self._check_module_state(module))
        return out

    # -- $REPRO_* reads -------------------------------------------------
    def _env_key(self, call: ast.Call) -> str | None:
        """The literal environment-variable name a read call targets."""
        path = call_path(call.func)
        if path in ("os.environ.get", "environ.get", "os.getenv", "getenv"):
            if call.args and isinstance(call.args[0], ast.Constant):
                value = call.args[0].value
                if isinstance(value, str):
                    return value
        return None

    def _read_allowed(
        self, module: ModuleInfo, function: str, key: str
    ) -> bool:
        if key.startswith(_SERVE_ENV_PREFIX):
            # Serving variables: only the serve resolver, regardless of
            # what the path-based allowances below would say.
            return module.display.endswith(_SERVE_ENV_MODULE)
        if module.display.endswith(_SERVE_ENV_MODULE):
            # The serve resolver reads only its own namespace.
            return False
        for suffix, predicate in _ENV_READ_ALLOWED:
            if module.display.endswith(suffix):
                if predicate is None or (function and predicate(function)):
                    return True
        return False

    def _check_env_read(
        self,
        call: ast.Call,
        module: ModuleInfo,
        enclosing_name: Callable[[ast.AST], str],
        diag: _DiagFn,
    ) -> None:
        key = self._env_key(call)
        if key is None or not key.startswith("REPRO_"):
            return
        if self._read_allowed(module, enclosing_name(call), key):
            return
        if key.startswith(_SERVE_ENV_PREFIX):
            diag(
                call,
                f"reads ${key} outside the sanctioned serve resolver "
                f"({_SERVE_ENV_MODULE}); serving configuration resolves "
                "through ServeConfig only",
            )
            return
        diag(
            call,
            f"reads ${key} outside the sanctioned resolvers "
            "(repro/api.py, the engine default_* resolvers, "
            "workloads build_network); resolve through the active "
            "Session / SessionConfig instead",
        )

    # -- os.environ writes ----------------------------------------------
    def _check_env_write_call(self, call: ast.Call, diag: _DiagFn) -> None:
        path = call_path(call.func)
        if path in ("os.putenv", "os.unsetenv"):
            diag(call, f"calls {path}(); mutating the process environment "
                 "cannot be scoped — use monkeypatch.setenv in tests")
            return
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("setdefault", "update", "pop")
            and _is_environ(func.value)
        ):
            diag(
                call,
                f"mutates os.environ via .{func.attr}(); process-"
                "environment writes cannot be scoped — use "
                "monkeypatch.setenv in tests",
            )

    def _check_env_write_stmt(
        self, node: "ast.Assign | ast.AugAssign | ast.Delete", diag: _DiagFn
    ) -> None:
        targets = (
            node.targets
            if isinstance(node, ast.Assign)
            else [node.target]
            if isinstance(node, ast.AugAssign)
            else node.targets
        )
        for target in targets:
            if isinstance(target, ast.Subscript) and _is_environ(
                target.value
            ):
                diag(
                    node,
                    "assigns into os.environ; process-environment "
                    "writes cannot be scoped — use monkeypatch.setenv "
                    "in tests",
                )

    # -- module-level mutable state --------------------------------------
    def _check_module_state(
        self, module: ModuleInfo
    ) -> Iterable[Diagnostic]:
        if "repro" not in module.path.parts:
            return  # package-internal convention; tests/benchmarks exempt
        for node in module.tree.body:
            if isinstance(node, ast.Assign):
                targets = [
                    t for t in node.targets if isinstance(t, ast.Name)
                ]
                value = node.value
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                targets = [node.target]
                value = node.value
            else:
                continue
            if value is None or not self._is_mutable_literal(value):
                continue
            for target in targets:
                name = target.id
                if name.startswith("__") and name.endswith("__"):
                    continue  # dunders (__all__)
                if is_all_caps(name):
                    continue  # sanctioned-registry convention
                yield Diagnostic(
                    rule=self.name,
                    path=module.display,
                    line=node.lineno,
                    message=(
                        f"module-level mutable container {name!r} outside "
                        "the sanctioned-registry convention; name it "
                        "ALL_CAPS (and document/clear it like the engine "
                        "memos) or scope the state in a Session"
                    ),
                )

    @staticmethod
    def _is_mutable_literal(value: ast.expr) -> bool:
        if isinstance(value, (ast.Dict, ast.List, ast.Set)):
            return True
        return (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in _MUTABLE_FACTORIES
        )
