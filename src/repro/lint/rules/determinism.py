"""determinism: result-producing paths stay reproducible run-to-run.

The optimizer's contract (docs/INVARIANTS.md, tested by the scalar/batch
equivalence suite) is that the same layer + accelerator + options always
yields the same schedule and the same cost, so cached records, paper
tables and CI comparisons are stable.  Three things quietly break that:

* **wall-clock reads** — ``time.time()`` / ``perf_counter()`` feeding a
  result (rather than a log line) makes output timing-dependent;
* **random numbers** — ``random.*`` / ``np.random.*`` without a seed
  threaded through the public API is unreproducible by construction;
* **set iteration order** — iterating a ``set`` literal/comprehension
  or ``set()``/``frozenset()`` call hands downstream code an order that
  varies with hash seeding (tie-breaking by iteration order is the
  classic symptom: two runs pick different equal-cost schedules).

Scope: modules under ``core/``, ``optimizer/``, ``sim/`` and ``serve/``
— the paths whose return values land in results (the serving layer's
contract is that a served result is bit-identical to the direct call,
so it is result-producing too).  Reporting/benchmark code may
legitimately read clocks; it lives outside this scope.

Two modules are exempt from the *clock* check (and only that check):
``repro/optimizer/clock.py``, the sanctioned injectable monotonic-clock
resolver behind the budgeted anytime search, and
``repro/serve/clock.py``, its twin for the serving layer (token-bucket
refill, deadline-to-budget mapping, latency percentiles).  Both
subsystems are timing-dependent by definition, but their result
contracts stay deterministic (a budgeted result is an exact prefix of
the unbudgeted search; serving only adds admission control) — and
funnelling every clock read through one injectable resolver per
subsystem is what keeps them testable.  Clock reads anywhere else in
scope stay banned.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import ModuleInfo, Rule, call_path

#: Wall-clock reads that make a result timing-dependent.
_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.now",
        "datetime.datetime.now",
        "datetime.utcnow",
        "datetime.datetime.utcnow",
    }
)

_SCOPED_PARTS = ("core", "optimizer", "sim", "serve")

#: The sanctioned clock modules: the injectable monotonic-clock
#: resolvers of the budgeted anytime search and of the serving layer
#: (see the module docstring).  Matched as the trailing
#: ``(package, filename)`` pair so the exemption cannot leak to an
#: unrelated ``clock.py`` elsewhere.
_SANCTIONED_CLOCK_MODULES = frozenset(
    {("optimizer", "clock.py"), ("serve", "clock.py")}
)


def _in_scope(module: ModuleInfo) -> bool:
    parts = module.path.parts
    return "repro" in parts and any(p in parts for p in _SCOPED_PARTS)


def _clock_sanctioned(module: ModuleInfo) -> bool:
    parts = module.path.parts
    return len(parts) >= 2 and parts[-2:] in _SANCTIONED_CLOCK_MODULES


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return isinstance(node, ast.Call) and call_path(node.func) in (
        "set",
        "frozenset",
    )


class DeterminismRule(Rule):
    name = "determinism"
    description = (
        "no wall-clock reads, random numbers or set-iteration order in "
        "the result-producing core/optimizer/sim paths"
    )

    def check_module(self, module: ModuleInfo) -> Iterable[Diagnostic]:
        if not _in_scope(module):
            return ()
        out: list[Diagnostic] = []

        def diag(node: ast.AST, message: str) -> None:
            out.append(
                Diagnostic(
                    rule=self.name,
                    path=module.display,
                    line=node.lineno,
                    message=message,
                )
            )

        clock_allowed = _clock_sanctioned(module)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                path = call_path(node.func)
                if path in _CLOCK_CALLS and not clock_allowed:
                    diag(
                        node,
                        f"calls {path}() in a result-producing module; "
                        "wall-clock values make output timing-dependent "
                        "— thread timing through the caller if it is "
                        "only diagnostics",
                    )
                elif path.startswith("random.") or ".random." in f".{path}":
                    diag(
                        node,
                        f"calls {path}() in a result-producing module; "
                        "unseeded randomness is unreproducible — accept "
                        "an explicit rng/seed argument instead",
                    )
                elif path in ("set", "frozenset") or _is_set_expr(node):
                    # bare set()/frozenset() construction is fine; only
                    # *iterating* one is flagged below.
                    pass
            # Iteration sites whose order reaches downstream code:
            if isinstance(node, (ast.For, ast.comprehension)):
                iter_expr = node.iter
                if _is_set_expr(iter_expr):
                    diag(
                        node if isinstance(node, ast.For) else iter_expr,
                        "iterates a set; iteration order varies with "
                        "hash seeding — sort first (`sorted(...)`) so "
                        "tie-breaks and output order are reproducible",
                    )
            elif isinstance(node, ast.Call):
                path = call_path(node.func)
                if path in ("list", "tuple", "iter", "next") and node.args:
                    if _is_set_expr(node.args[0]):
                        diag(
                            node,
                            f"{path}() materialises a set's iteration "
                            "order; sort first (`sorted(...)`) so the "
                            "order is reproducible",
                        )
        return out
