"""atomic-write: store modules never leave a half-written file behind.

The config stores are read concurrently by other processes (the sweep
workers of PR 4 share one cache directory), so every persisted artifact
must appear atomically: write to a sibling temp file, then ``os.replace``
it over the destination.  A bare ``open(path, "w")`` in a store module is
a torn-read window — a reader that races the writer sees truncated JSON,
which is exactly the corruption the quarantine machinery exists to mop
up after.  This rule flags, inside any module whose filename contains
``store``:

* ``open(..., "w"/"wb"/"w+"...)`` calls, and
* ``Path.write_text`` / ``Path.write_bytes`` calls,

unless the write clearly participates in the temp+replace idiom: the
target's root name mentions ``tmp``/``temp`` *and* the enclosing function
also calls ``os.replace``.  Append mode (``"a"``) is exempt — appends of
complete lines (the MANIFEST journal) are the one sanctioned non-replace
pattern, readers tolerate a torn final line there.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import (
    ModuleInfo,
    Rule,
    call_path,
    enclosing_functions,
    root_name,
)


def _open_mode(call: ast.Call) -> str | None:
    """The literal mode of an ``open()`` call (default ``"r"``)."""
    if call_path(call.func) not in ("open", "io.open", "pathlib.Path.open"):
        if not (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "open"
        ):
            return None
    mode_expr: ast.expr | None = None
    # open(path, "w") / path.open("w"): the first str-literal positional
    # after the filename (or the only positional for the method form).
    for arg in call.args:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            candidate = arg.value
            if all(ch in "rwxabt+U" for ch in candidate) and candidate:
                mode_expr = arg
                break
    for kw in call.keywords:
        if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
            mode_expr = kw.value
    if mode_expr is None:
        return "r"
    value = mode_expr.value
    return value if isinstance(value, str) else None


def _write_target(call: ast.Call) -> ast.expr | None:
    """The path expression being written, for open()/write_text forms."""
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr in (
        "write_text",
        "write_bytes",
        "open",
    ):
        return func.value
    if call.args:
        return call.args[0]
    return None


def _mentions_tmp(node: ast.expr | None) -> bool:
    if node is None:
        return False
    for sub in ast.walk(node):
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            name = sub.value
        if name and ("tmp" in name.lower() or "temp" in name.lower()):
            return True
    return False


def _calls_replace(func: ast.AST | None) -> bool:
    if func is None:
        return False
    for sub in ast.walk(func):
        if isinstance(sub, ast.Call) and call_path(sub.func) in (
            "os.replace",
            "os.rename",
        ):
            return True
    return False


class AtomicWriteRule(Rule):
    name = "atomic-write"
    description = (
        "writes in store modules must go through a temp file + "
        "os.replace so concurrent readers never see a torn file"
    )

    def check_module(self, module: ModuleInfo) -> Iterable[Diagnostic]:
        if "store" not in module.path.name:
            return ()
        out: list[Diagnostic] = []
        parents = enclosing_functions(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            finding = self._check_call(node, parents)
            if finding is not None:
                out.append(
                    Diagnostic(
                        rule=self.name,
                        path=module.display,
                        line=node.lineno,
                        message=finding,
                    )
                )
        return out

    def _check_call(
        self, call: ast.Call, parents: dict[ast.AST, ast.AST | None]
    ) -> str | None:
        func = call.func
        verb: str | None = None
        if isinstance(func, ast.Attribute) and func.attr in (
            "write_text",
            "write_bytes",
        ):
            verb = f".{func.attr}()"
        else:
            mode = _open_mode(call)
            if mode is None or not any(ch in mode for ch in "wx"):
                return None  # read or append: not a torn-write risk
            verb = f'open(..., "{mode}")'
        target = _write_target(call)
        enclosing = parents.get(call)
        if _mentions_tmp(target) and _calls_replace(enclosing):
            return None  # the sanctioned temp+os.replace idiom
        return (
            f"{verb} writes a store file in place; concurrent readers "
            "can observe a torn file — write to a sibling *.tmp.* path "
            "and os.replace() it over the destination"
        )
