"""The repro lint engine: file walking, parsing, suppressions, rules.

The framework is deliberately small: a :class:`Rule` sees one parsed
module at a time (:meth:`Rule.check_module`) and, after every module has
been visited, the whole corpus at once (:meth:`Rule.finish`) — the hook
project-wide rules such as signature-completeness use to cross-reference
the AST of a dataclass in one file against the signature function that
consumes it in another.

Suppressions
------------
A finding is suppressed with an inline comment naming the rule::

    records = {}  # repro-lint: disable=scoped-config  # test-only registry

The marker applies to its own line; a *standalone* comment line (nothing
but the comment) also covers the next line of code, so statements whose
trailing comment space is taken can carry the justification above them.
Several rules may be named, comma-separated, and ``disable=all`` silences
every rule for the line.  There is deliberately no file-wide or baseline
suppression: every waiver sits next to the code it excuses, with its
reason in the same comment.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import re
import tokenize
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.diagnostics import Diagnostic

#: Directories never walked for lintable sources.
SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".hg", ".venv", "venv", "node_modules", "build"}
)

_SUPPRESS_RE = re.compile(r"repro-lint:\s*disable=([A-Za-z0-9_,\- ]+)")


@dataclasses.dataclass(frozen=True)
class ModuleInfo:
    """One parsed source file plus its lint metadata."""

    path: Path  #: filesystem path as given/walked
    display: str  #: normalised posix path used in diagnostics
    source: str
    tree: ast.Module
    #: line number -> rule names suppressed on that line ("all" wildcard).
    suppressions: dict[int, frozenset[str]]

    def suppressed(self, rule: str, line: int) -> bool:
        names = self.suppressions.get(line)
        return names is not None and (rule in names or "all" in names)


def parse_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map line numbers to the rule names suppressed on them.

    Standalone comment lines extend their suppression through any
    immediately following comment/blank lines to the first line of code,
    so a multi-line justification can sit directly above the statement
    it waives with the marker on its first line.
    """
    found: dict[int, set[str]] = {}
    lines = source.splitlines()

    def is_commentary(lineno: int) -> bool:
        if not 1 <= lineno <= len(lines):
            return False
        stripped = lines[lineno - 1].strip()
        return stripped == "" or stripped.startswith("#")

    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            tok for tok in tokens if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}
    for tok in comments:
        match = _SUPPRESS_RE.search(tok.string)
        if not match:
            continue
        names = {
            name.strip()
            for name in match.group(1).split(",")
            if name.strip()
        }
        line = tok.start[0]
        found.setdefault(line, set()).update(names)
        prefix = tok.line[: tok.start[1]]
        if prefix.strip() == "":  # standalone: cover down to the code line
            covered = line + 1
            while is_commentary(covered):
                found.setdefault(covered, set()).update(names)
                covered += 1
            if covered <= len(lines):
                found.setdefault(covered, set()).update(names)
    return {line: frozenset(names) for line, names in found.items()}


def load_module(path: Path, display: str | None = None) -> ModuleInfo:
    """Parse one file into a :class:`ModuleInfo` (raises ``SyntaxError``)."""
    source = path.read_text()
    return ModuleInfo(
        path=path,
        display=display if display is not None else path.as_posix(),
        source=source,
        tree=ast.parse(source, filename=str(path)),
        suppressions=parse_suppressions(source),
    )


def walk_paths(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: list[Path] = []
    seen: set[Path] = set()
    for item in paths:
        root = Path(item)
        if root.is_file():
            candidates = [root]
        elif root.is_dir():
            candidates = [
                p
                for p in sorted(root.rglob("*.py"))
                if not any(
                    part in SKIP_DIRS or part.startswith(".")
                    for part in p.parts
                )
            ]
        else:
            raise FileNotFoundError(f"no such file or directory: {root}")
        for path in candidates:
            if path not in seen:
                seen.add(path)
                out.append(path)
    return out


class Rule:
    """Base class of one invariant checker.

    Subclasses set :attr:`name` (the suppression/CLI identifier) and
    :attr:`description`, and override :meth:`check_module` and/or
    :meth:`finish`.  Rules must *yield or return* diagnostics — never
    raise — so one finding cannot mask the rest of the run.
    """

    name: str = "rule"
    description: str = ""

    def check_module(self, module: ModuleInfo) -> Iterable[Diagnostic]:
        return ()

    def finish(
        self, modules: Sequence[ModuleInfo]
    ) -> Iterable[Diagnostic]:
        return ()


class Linter:
    """Run a rule set over a corpus of files and filter suppressions."""

    def __init__(self, rules: Sequence[Rule]) -> None:
        names = [rule.name for rule in rules]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate rule names in {names}")
        self.rules = tuple(rules)

    def lint_modules(
        self, modules: Sequence[ModuleInfo]
    ) -> list[Diagnostic]:
        raw: list[Diagnostic] = []
        for module in modules:
            for rule in self.rules:
                raw.extend(rule.check_module(module))
        for rule in self.rules:
            raw.extend(rule.finish(modules))
        by_display = {module.display: module for module in modules}
        kept = []
        for diag in raw:
            module = by_display.get(diag.path)
            if module is not None and module.suppressed(diag.rule, diag.line):
                continue
            kept.append(diag)
        return kept

    def lint_paths(
        self, paths: Iterable[str | Path]
    ) -> list[Diagnostic]:
        """Walk, parse and check ``paths``; unparseable files become
        ``syntax`` diagnostics rather than aborting the run."""
        modules: list[ModuleInfo] = []
        diagnostics: list[Diagnostic] = []
        for path in walk_paths(paths):
            try:
                modules.append(load_module(path))
            except SyntaxError as exc:
                diagnostics.append(
                    Diagnostic(
                        rule="syntax",
                        path=path.as_posix(),
                        line=exc.lineno or 1,
                        message=f"could not parse: {exc.msg}",
                    )
                )
        diagnostics.extend(self.lint_modules(modules))
        return diagnostics


# ----------------------------------------------------------------------
# Shared AST helpers used by several rules
# ----------------------------------------------------------------------
def enclosing_functions(tree: ast.Module) -> dict[ast.AST, ast.AST | None]:
    """Map every node to its innermost enclosing function def (or None)."""
    parents: dict[ast.AST, ast.AST | None] = {}

    def visit(node: ast.AST, owner: ast.AST | None) -> None:
        for child in ast.iter_child_nodes(node):
            parents[child] = owner
            next_owner = (
                child
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                )
                else owner
            )
            visit(child, next_owner)

    visit(tree, None)
    return parents


def root_name(node: ast.AST) -> str | None:
    """The base ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def call_path(node: ast.expr) -> str:
    """Dotted path of a call target (``os.environ.get`` etc.), best-effort."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def is_all_caps(name: str) -> bool:
    """Module-constant naming convention (``_CACHE_STATS``, ``OBJECTIVES``)."""
    stripped = name.strip("_")
    return bool(stripped) and stripped == stripped.upper()


def string_constants(node: ast.AST) -> set[str]:
    """Every string literal anywhere under ``node``."""
    return {
        n.value
        for n in ast.walk(node)
        if isinstance(n, ast.Constant) and isinstance(n.value, str)
    }
