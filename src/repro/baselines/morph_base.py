"""Morph-base: the inflexible baseline accelerator (Section VI-B).

Same silicon as Morph — 6 clusters x 16 PEs x 8 lanes, 1 MB / 64 kB / 16 kB
buffers — but with everything configuration-time-flexible pinned to the
average-best choice the Morph optimizer produces:

* outer loop order ``[WHCKF]``, inner ``[cfwhk]`` (Section IV-A3),
* static buffer partitions per Table I,
* fixed parallelism ``Hp = 16``, ``Kp = 6``.

Tile *sizes* still adapt per layer: Morph-base's FSMs are fixed-function
for a dataflow, not for a shape, exactly like other inflexible accelerators
the paper compares against.  The evaluation therefore runs the same search
as Morph with the dataflow degrees of freedom removed, isolating the value
of flexibility — the paper's experimental design.
"""

from __future__ import annotations

from repro.arch.accelerator import AcceleratorConfig, morph_base
from repro.optimizer.search import (
    NetworkResult,
    OptimizerOptions,
    optimize_network,
)
from repro.workloads.networks import Network


def morph_base_arch() -> AcceleratorConfig:
    return morph_base()


def evaluate_network_on_morph_base(
    network: Network,
    options: OptimizerOptions | None = None,
) -> NetworkResult:
    """Per-layer evaluation of a network on the inflexible baseline."""
    arch = morph_base()
    options = options or OptimizerOptions()
    return optimize_network(
        network.layers,
        arch,
        options,
        network_name=network.name,
    )
