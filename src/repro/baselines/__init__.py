"""Comparison accelerators: Morph-base and the Eyeriss-style 2D machine.

Both points of comparison from the paper's evaluation (Section VI-B): the
same-silicon inflexible baseline, and a row-stationary 2D accelerator that
must evaluate 3D CNNs frame by frame.
"""
