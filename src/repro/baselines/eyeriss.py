"""Eyeriss baseline: a 2D row-stationary accelerator on 3D CNNs.

The paper simulates Eyeriss with the nnflow simulator, normalised to
Morph's compute and on-chip storage (Table II), and lets it evaluate 3D
CNNs "frame by frame": a 2D accelerator must run 2D convolution on each of
the T temporal taps separately and merge the partially computed frames,
repeating for every output frame (Section IV-A).  This module rebuilds that
behaviour on our own machinery:

* each (output frame, tap) pair is one 2D convolution of the layer's
  spatial shape, evaluated on the 2-level Eyeriss machine with its fixed
  row-stationary-style dataflow;
* the partial frames are merged through the global buffer when the psum
  map fits its partition, otherwise through DRAM — the "large overhead in
  the form of on/off-chip buffer transfers per frame";
* 2D layers (T = F = 1) take the direct path with no merge overhead, which
  is why Eyeriss remains competitive on AlexNet (Section VI-D).
"""

from __future__ import annotations

import dataclasses

from repro.arch.accelerator import AcceleratorConfig, eyeriss_like
from repro.core.dims import DataType
from repro.core.evaluate import Evaluation
from repro.core.layer import ConvLayer
from repro.optimizer.engine import optimize_layer
from repro.optimizer.search import OptimizerOptions
from repro.workloads.networks import Network


def eyeriss_arch() -> AcceleratorConfig:
    return eyeriss_like()


def tap_convolutions(layer: ConvLayer) -> int:
    """Number of 2D convolutions a frame-by-frame evaluation performs.

    One per (output frame, valid temporal tap); zero-padded taps at clip
    edges need no pass.  For interior frames this is ``T`` taps per output
    frame, i.e. ``~(F - T + 1) * T`` total at stride 1 without padding.
    """
    total = 0
    for out_f in range(layer.out_f):
        start = out_f * layer.stride_f - layer.pad_f
        for t in range(layer.t):
            if 0 <= start + t < layer.f:
                total += 1
    return total


@dataclasses.dataclass(frozen=True)
class EyerissLayerResult:
    """Energy/cycles of one (possibly 3D) layer run frame-by-frame."""

    layer: ConvLayer
    tap_evaluation: Evaluation  #: one 2D tap convolution
    taps: int
    merge_dram_bytes: float
    merge_buffer_bytes: float
    energy_pj: float
    cycles: float

    @property
    def maccs(self) -> int:
        return self.layer.maccs

    def figure9_components(self) -> dict[str, float]:
        """Tap components scaled to all taps, plus merge traffic."""
        tech = self.tap_evaluation.arch.technology
        components = {
            name: pj * self.taps
            for name, pj in self.tap_evaluation.energy.figure9_components().items()
        }
        components["DRAM"] = components.get("DRAM", 0.0) + (
            self.merge_dram_bytes * tech.dram_pj_per_byte
        )
        arch = self.tap_evaluation.arch
        glb_pj = self.merge_buffer_bytes * 0.5 * (
            arch.read_pj_per_byte(0, DataType.PSUMS)
            + arch.write_pj_per_byte(0, DataType.PSUMS)
        )
        components["L2"] = components.get("L2", 0.0) + glb_pj
        components.setdefault("L1", 0.0)
        return components


def evaluate_layer_on_eyeriss(
    layer: ConvLayer,
    options: OptimizerOptions | None = None,
    arch: AcceleratorConfig | None = None,
) -> EyerissLayerResult:
    """Frame-by-frame evaluation of one layer (Section IV-A's procedure)."""
    arch = arch or eyeriss_like()
    options = options or OptimizerOptions()
    tap_layer = layer.as_2d_frame()
    # The engine dedups identical 2D frame shapes across a network's
    # layers and recalls earlier tap searches from its caches.
    tap_result = optimize_layer(tap_layer, arch, options)
    tap_ev = tap_result.best

    taps = tap_convolutions(layer)
    tech = arch.technology

    # The tap evaluation writes its partial frame as final 1-byte outputs;
    # replace that with psum-width merge traffic into GLB or DRAM.
    frame_out_elems = tap_layer.output_elements
    psum_bytes = arch.precision.psum_bytes
    act_bytes = arch.precision.activation_bytes
    frame_psum_bytes = frame_out_elems * psum_bytes

    merges_per_frame = _taps_per_output_frame(layer)
    merge_dram = 0.0
    merge_buffer = 0.0
    # The GLB psum partition already holds the in-flight tap's own psum
    # tile; the running inter-tap frame map only stays on-chip if it fits
    # in what is left.  For most 3D layers it does not, which is exactly
    # the "large overhead in on/off-chip buffer transfers per frame" of
    # Section IV-A.
    glb_psum_capacity = arch.partitions[0].capacity_for(
        arch.levels[0], DataType.PSUMS
    )
    tap_psum_tile = tap_ev.dataflow.hierarchy.outermost.bytes_of(
        DataType.PSUMS, tap_layer, arch.precision
    )
    fits_in_glb = frame_psum_bytes <= max(0, glb_psum_capacity - tap_psum_tile)
    for merges in merges_per_frame:
        # The first (merges - 1) taps write the running psum map and the
        # next tap reads it back; the final accumulation leaves as
        # activations directly.  Single-tap frames (all 2D layers) need no
        # merging at all — their tap output is final.
        writes = max(0, merges - 1) * frame_psum_bytes
        reads = max(0, merges - 1) * frame_psum_bytes
        # The running map always streams through the GLB on its way to and
        # from the array; when it does not fit, it additionally round-trips
        # DRAM.
        merge_buffer += writes + reads
        if not fits_in_glb:
            merge_dram += writes + reads
        merge_dram += frame_out_elems * act_bytes  # final output

    # Remove the per-tap final-output DRAM write the tap model counted
    # (its psums are merged on-chip/off-chip here instead).
    tap_final_write_pj = frame_out_elems * act_bytes * tech.dram_pj_per_byte
    tap_energy = tap_ev.total_energy_pj - tap_final_write_pj

    glb_pj_per_byte = 0.5 * (
        arch.read_pj_per_byte(0, DataType.PSUMS)
        + arch.write_pj_per_byte(0, DataType.PSUMS)
    )
    merge_energy = (
        merge_dram * tech.dram_pj_per_byte + merge_buffer * glb_pj_per_byte
    )
    energy = taps * tap_energy + merge_energy

    merge_cycles = (merge_dram + merge_buffer) / arch.noc.boundary_bandwidth_bytes_per_cycle(0)
    cycles = taps * tap_ev.cycles + merge_cycles

    return EyerissLayerResult(
        layer=layer,
        tap_evaluation=tap_ev,
        taps=taps,
        merge_dram_bytes=merge_dram,
        merge_buffer_bytes=merge_buffer,
        energy_pj=energy,
        cycles=cycles,
    )


def _taps_per_output_frame(layer: ConvLayer) -> list[int]:
    """Valid (non-padding) taps contributing to each output frame."""
    counts = []
    for out_f in range(layer.out_f):
        start = out_f * layer.stride_f - layer.pad_f
        counts.append(
            sum(1 for t in range(layer.t) if 0 <= start + t < layer.f)
        )
    return counts


@dataclasses.dataclass(frozen=True)
class EyerissNetworkResult:
    """Network aggregate mirroring :class:`NetworkResult`."""

    network_name: str
    layers: tuple[EyerissLayerResult, ...]
    arch_name: str = "Eyeriss"

    @property
    def total_energy_pj(self) -> float:
        return sum(r.energy_pj for r in self.layers)

    @property
    def total_cycles(self) -> float:
        return sum(r.cycles for r in self.layers)

    @property
    def total_maccs(self) -> int:
        return sum(r.maccs for r in self.layers)

    @property
    def perf_per_watt(self) -> float:
        return self.total_maccs / (self.total_energy_pj * 1e-12)

    def energy_components_pj(self) -> dict[str, float]:
        totals: dict[str, float] = {}
        for result in self.layers:
            for name, pj in result.figure9_components().items():
                totals[name] = totals.get(name, 0.0) + pj
        return totals


_EYERISS_CACHE: dict[tuple, EyerissNetworkResult] = {}


def clear_cache() -> None:
    """Drop the memoised Eyeriss network evaluations."""
    _EYERISS_CACHE.clear()


def evaluate_network_on_eyeriss(
    network: Network,
    options: OptimizerOptions | None = None,
) -> EyerissNetworkResult:
    options = options or OptimizerOptions()
    # Content-keyed (layers + options): the same layer tuple under two
    # network names shares one entry, mirroring the optimizer engine.
    key = (options, tuple(network.layers))
    if key in _EYERISS_CACHE:
        cached = _EYERISS_CACHE[key]
        if cached.network_name == network.name:
            return cached
        return dataclasses.replace(cached, network_name=network.name)
    arch = eyeriss_like()
    results = tuple(
        evaluate_layer_on_eyeriss(layer, options, arch) for layer in network.layers
    )
    outcome = EyerissNetworkResult(network_name=network.name, layers=results)
    _EYERISS_CACHE[key] = outcome
    return outcome
