"""Workload library: every CNN the paper profiles or evaluates.

Importing this package populates the network registry; use
:func:`build_network` / :func:`network_names` or the individual factories.
"""

from repro.workloads.networks import (
    Network,
    ShapeTracker,
    build_network,
    network_names,
    set_build_defaults,
)
from repro.workloads.alexnet import alexnet
from repro.workloads.c3d import c3d
from repro.workloads.c3d_dilated import c3d_dilated
from repro.workloads.i3d import i3d
from repro.workloads.inception2d import inception
from repro.workloads.r2plus1d import r2plus1d
from repro.workloads.resnet2d import resnet50
from repro.workloads.resnet3d import resnet3d50
from repro.workloads.two_stream import two_stream

#: The five networks of the paper's accelerator evaluation (Section VI-C).
EVALUATED_NETWORKS = ("c3d", "resnet3d50", "i3d", "two_stream", "alexnet")

#: The six networks of Figure 1's motivating footprint/reuse analysis.
FIGURE1_NETWORKS = ("alexnet", "inception", "resnet50", "c3d", "resnet3d50", "i3d")

__all__ = [
    "Network",
    "ShapeTracker",
    "build_network",
    "network_names",
    "set_build_defaults",
    "alexnet",
    "c3d",
    "c3d_dilated",
    "i3d",
    "inception",
    "r2plus1d",
    "resnet50",
    "resnet3d50",
    "two_stream",
    "EVALUATED_NETWORKS",
    "FIGURE1_NETWORKS",
]
