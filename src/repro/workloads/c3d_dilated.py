"""Dilated-3D C3D variant (the D2Conv3D scenario, Schmidt et al. 2021).

D2Conv3D dilates the spatio-temporal convolutions of a video backbone to
grow the receptive field without extra parameters or downsampling.  This
workload applies the same recipe to the C3D backbone: the deep blocks
(4a-5b) trade their pooling-driven resolution loss for dilated kernels —
same taps, wider input-space span, so their halo/footprint behaviour on the
accelerator differs from dense C3D in exactly the way the dilation-aware
tiling model must capture.
"""

from __future__ import annotations

from repro.workloads.networks import Network, ShapeTracker, register


@register("c3d_dilated")
def c3d_dilated(
    input_hw: int = 112, frames: int = 16, dilation: int = 2
) -> Network:
    """C3D with dilated deep blocks; ``dilation`` applies from block 4 on."""
    net = ShapeTracker(h=input_hw, w=input_hw, c=3, f=frames)
    net.conv("layer1", k=64, r=3, t=3)
    net.pool(size=2, size_f=1)
    net.conv("layer2", k=128, r=3, t=3)
    net.pool(size=2, size_f=2)
    net.conv("layer3a", k=256, r=3, t=3)
    net.conv("layer3b", k=256, r=3, t=3)
    net.pool(size=2, size_f=2)
    # Blocks 4 and 5 keep their resolution (no further pooling) and dilate
    # instead — the D2Conv3D substitution.  Temporal dilation is capped by
    # the shrunken frame count so the span still fits the padded input.
    f_dilation = min(dilation, max(1, (net.f + 1) // 2))
    net.conv("layer4a", k=512, r=3, t=3, dilation=dilation, dilation_f=f_dilation)
    net.conv("layer4b", k=512, r=3, t=3, dilation=dilation, dilation_f=f_dilation)
    net.conv("layer5a", k=512, r=3, t=3, dilation=dilation, dilation_f=f_dilation)
    net.conv("layer5b", k=512, r=3, t=3, dilation=dilation, dilation_f=f_dilation)
    return net.build("C3D-dilated", is_3d=True, input_frames=frames)
