"""GoogLeNet / Inception-v1 (Szegedy et al., CVPR 2015) — Figure 1's
"Inception" 2D comparison network.

Nine inception modules; each module's four branches (1x1; 1x1->3x3;
1x1->5x5; pool->1x1 projection) all read the same input volume.
"""

from __future__ import annotations

from repro.core.layer import ConvLayer
from repro.workloads.networks import Network, ShapeTracker, register

#: Inception module channel table: (name, #1x1, #3x3red, #3x3, #5x5red,
#: #5x5, pool_proj), straight from the GoogLeNet paper.
INCEPTION_MODULES = (
    ("3a", 64, 96, 128, 16, 32, 32),
    ("3b", 128, 128, 192, 32, 96, 64),
    ("4a", 192, 96, 208, 16, 48, 64),
    ("4b", 160, 112, 224, 24, 64, 64),
    ("4c", 128, 128, 256, 24, 64, 64),
    ("4d", 112, 144, 288, 32, 64, 64),
    ("4e", 256, 160, 320, 32, 128, 128),
    ("5a", 256, 160, 320, 32, 128, 128),
    ("5b", 384, 192, 384, 48, 128, 128),
)


def inception_module_layers(
    name: str,
    h: int,
    w: int,
    c: int,
    spec: tuple[int, int, int, int, int, int],
    *,
    f: int = 1,
    temporal: bool = False,
) -> tuple[list[ConvLayer], int]:
    """Layers of one module plus its output channel count.

    With ``temporal=True`` the spatial kernels inflate to 3D (used by the
    I3D builder): 3x3 -> 3x3x3 and the 5x5 branch's conv becomes 3x3x3, as
    in the public I3D implementation.
    """
    n1, n3r, n3, n5r, n5, npp = spec
    t_small = 3 if temporal else 1
    layers = []

    def conv(suffix: str, c_in: int, k: int, r: int, t: int) -> ConvLayer:
        return ConvLayer(
            name=f"{name}_{suffix}", h=h, w=w, c=c_in, f=f, k=k,
            r=r, s=r, t=t,
            pad_h=(r - 1) // 2, pad_w=(r - 1) // 2, pad_f=(t - 1) // 2,
        )

    layers.append(conv("1x1", c, n1, 1, 1))
    layers.append(conv("3x3_reduce", c, n3r, 1, 1))
    layers.append(conv("3x3", n3r, n3, 3, t_small))
    layers.append(conv("5x5_reduce", c, n5r, 1, 1))
    if temporal:
        layers.append(conv("5x5", n5r, n5, 3, 3))
    else:
        layers.append(conv("5x5", n5r, n5, 5, 1))
    layers.append(conv("pool_proj", c, npp, 1, 1))
    return layers, n1 + n3 + n5 + npp


@register("inception")
def inception(input_hw: int = 224) -> Network:
    net = ShapeTracker(h=input_hw, w=input_hw, c=3)
    net.conv("conv1_7x7", k=64, r=7, stride=2)
    net.pool(size=3, stride=2)
    net.conv("conv2_3x3_reduce", k=64, r=1)
    net.conv("conv2_3x3", k=192, r=3)
    net.pool(size=3, stride=2)
    for name, *spec in INCEPTION_MODULES:
        if name in ("4a", "5a"):
            net.pool(size=3, stride=2)
        layers, out_c = inception_module_layers(
            f"inception_{name}", net.h, net.w, net.c, tuple(spec)
        )
        net.layers.extend(layers)
        net.set_channels(out_c)
    return net.build("Inception", is_3d=False)
