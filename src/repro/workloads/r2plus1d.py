"""R(2+1)D (Tran et al., "A closer look at spatiotemporal convolutions").

Cited by the paper as a 3D-convolution derivative [32]: every 3x3x3
convolution factorises into a 2D spatial convolution (1x3x3, with an
expanded intermediate channel count ``M``) followed by a 1D temporal one
(3x1x1).  Hardware-wise this stresses Morph differently from C3D — the
temporal taps concentrate in T-only layers where the ``F`` dimension
carries all slide reuse — making it a good extension workload for the
flexible dataflow.

The 18-layer variant (R(2+1)D-18) over 16-frame 112x112 clips.
"""

from __future__ import annotations

from repro.workloads.networks import Network, ShapeTracker, register


def _mid_channels(c_in: int, k: int, t: int = 3, d: int = 3) -> int:
    """The paper's M_i: chosen so the factorised pair matches the 3D
    conv's parameter count: M = t*d^2*c*k / (d^2*c + t*k)."""
    return max(1, round(t * d * d * c_in * k / (d * d * c_in + t * k)))


def _block(net: ShapeTracker, name: str, k: int, *, stride: int = 1,
           stride_f: int = 1) -> None:
    """One (2+1)D residual block: two factorised convolutions."""
    for half, (s_hw, s_f) in (("a", (stride, stride_f)), ("b", (1, 1))):
        mid = _mid_channels(net.c, k)
        net.conv(f"{name}{half}_spatial", k=mid, r=3, t=1, stride=s_hw)
        net.conv(f"{name}{half}_temporal", k=k, r=1, t=3, stride_f=s_f)


@register("r2plus1d")
def r2plus1d(input_hw: int = 112, frames: int = 16) -> Network:
    net = ShapeTracker(h=input_hw, w=input_hw, c=3, f=frames)
    # Factorised stem: 1x7x7 spatial (stride 2) then 3x1x1 temporal.
    net.conv("stem_spatial", k=45, r=7, t=1, stride=2)
    net.conv("stem_temporal", k=64, r=1, t=3)
    _block(net, "res2a", 64)
    _block(net, "res2b", 64)
    _block(net, "res3a", 128, stride=2, stride_f=2)
    _block(net, "res3b", 128)
    _block(net, "res4a", 256, stride=2, stride_f=2)
    _block(net, "res4b", 256)
    _block(net, "res5a", 512, stride=2, stride_f=2)
    _block(net, "res5b", 512)
    return net.build("R(2+1)D-18", is_3d=True, input_frames=frames)
