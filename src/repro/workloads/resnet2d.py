"""2D ResNet-50 (He et al., CVPR 2016) — used in Figure 1's comparison.

Bottleneck residual network: conv1 then four stages of [3, 4, 6, 3]
bottlenecks (1x1 reduce, 3x3, 1x1 expand) with projection shortcuts at
stage entries.  Downsampling follows the v1.5 convention (stride on the
3x3), which does not change footprints materially.
"""

from __future__ import annotations

from repro.workloads.networks import Network, ShapeTracker, register

#: (bottleneck channels, output channels, block count) per stage.
RESNET50_STAGES = (
    (64, 256, 3),
    (128, 512, 4),
    (256, 1024, 6),
    (512, 2048, 3),
)


def _bottleneck(
    net: ShapeTracker,
    name: str,
    mid: int,
    out: int,
    *,
    stride: int,
    project: bool,
) -> None:
    in_h, in_w, in_c = net.h, net.w, net.c
    net.conv(f"{name}_1x1a", k=mid, r=1)
    net.conv(f"{name}_3x3", k=mid, r=3, stride=stride)
    net.conv(f"{name}_1x1b", k=out, r=1)
    if project:
        # Projection shortcut runs on the block input in parallel.
        shortcut = ShapeTracker(h=in_h, w=in_w, c=in_c)
        net.layers.append(
            shortcut.conv(f"{name}_proj", k=out, r=1, stride=stride, pad=0)
        )


@register("resnet50")
def resnet50(input_hw: int = 224) -> Network:
    net = ShapeTracker(h=input_hw, w=input_hw, c=3)
    net.conv("conv1", k=64, r=7, stride=2)
    net.pool(size=3, stride=2)
    for stage_index, (mid, out, blocks) in enumerate(RESNET50_STAGES, start=2):
        for block in range(blocks):
            stride = 2 if (block == 0 and stage_index > 2) else 1
            _bottleneck(
                net,
                f"res{stage_index}{chr(ord('a') + block)}",
                mid,
                out,
                stride=stride,
                project=block == 0,
            )
    return net.build("ResNet-50", is_3d=False)
