"""C3D (Tran et al., ICCV 2015) — the paper's representative 3D CNN.

Eight 3x3x3 convolution layers over 16-frame 112x112 clips, with pooling
that halves spatial dims after every block and temporal dims after blocks
2-4.  Layer names follow the paper's Table III (layer1 ... layer5b); the
shapes reproduce its tile bounds, e.g. layer1's input-space Ht of
114 = 112 + 2 padding rows.
"""

from __future__ import annotations

from repro.workloads.networks import Network, ShapeTracker, register


@register("c3d")
def c3d(input_hw: int = 112, frames: int = 16) -> Network:
    """Build C3D; Figure 1a uses ``input_hw=224`` per its caption."""
    net = ShapeTracker(h=input_hw, w=input_hw, c=3, f=frames)
    net.conv("layer1", k=64, r=3, t=3)
    net.pool(size=2, size_f=1)  # pool1: (1, 2, 2), keeps all frames
    net.conv("layer2", k=128, r=3, t=3)
    net.pool(size=2, size_f=2)  # pool2: (2, 2, 2)
    net.conv("layer3a", k=256, r=3, t=3)
    net.conv("layer3b", k=256, r=3, t=3)
    net.pool(size=2, size_f=2)
    net.conv("layer4a", k=512, r=3, t=3)
    net.conv("layer4b", k=512, r=3, t=3)
    net.pool(size=2, size_f=2)
    net.conv("layer5a", k=512, r=3, t=3)
    net.conv("layer5b", k=512, r=3, t=3)
    return net.build("C3D", is_3d=True, input_frames=frames)
