"""3D ResNet-50 (Hara et al., "Can spatiotemporal 3D CNNs retrace ...").

The 2D ResNet-50 inflated to 3D: conv1 becomes 7x7x7 and every bottleneck's
3x3 becomes 3x3x3, over 16-frame 112x112 clips.  Temporal striding follows
the reference implementation: conv1 keeps all frames, stages 3-5 halve
frames alongside the spatial downsampling.
"""

from __future__ import annotations

from repro.workloads.networks import Network, ShapeTracker, register
from repro.workloads.resnet2d import RESNET50_STAGES


def _bottleneck3d(
    net: ShapeTracker,
    name: str,
    mid: int,
    out: int,
    *,
    stride: int,
    stride_f: int,
    project: bool,
) -> None:
    in_h, in_w, in_c, in_f = net.h, net.w, net.c, net.f
    net.conv(f"{name}_1x1a", k=mid, r=1, t=1)
    net.conv(f"{name}_3x3", k=mid, r=3, t=3, stride=stride, stride_f=stride_f)
    net.conv(f"{name}_1x1b", k=out, r=1, t=1)
    if project:
        shortcut = ShapeTracker(h=in_h, w=in_w, c=in_c, f=in_f)
        net.layers.append(
            shortcut.conv(
                f"{name}_proj", k=out, r=1, t=1,
                stride=stride, stride_f=stride_f, pad=0, pad_f=0,
            )
        )


@register("resnet3d50")
def resnet3d50(input_hw: int = 112, frames: int = 16) -> Network:
    net = ShapeTracker(h=input_hw, w=input_hw, c=3, f=frames)
    net.conv("conv1", k=64, r=7, t=7, stride=2)
    net.pool(size=3, stride=2)
    for stage_index, (mid, out, blocks) in enumerate(RESNET50_STAGES, start=2):
        for block in range(blocks):
            first = block == 0
            stride = 2 if (first and stage_index > 2) else 1
            stride_f = 2 if (first and stage_index > 2) else 1
            _bottleneck3d(
                net,
                f"res{stage_index}{chr(ord('a') + block)}",
                mid,
                out,
                stride=stride,
                stride_f=stride_f,
                project=first,
            )
    return net.build("ResNet3D-50", is_3d=True, input_frames=frames)
