"""AlexNet (Krizhevsky et al., NIPS 2012) — the 2D CNN baseline workload.

Five convolution layers; group convolutions of the original are modelled as
dense (standard practice in accelerator studies, and what 100 % density in
the paper's Eyeriss comparison implies).
"""

from __future__ import annotations

from repro.workloads.networks import Network, ShapeTracker, register


@register("alexnet")
def alexnet(input_hw: int = 227) -> Network:
    net = ShapeTracker(h=input_hw, w=input_hw, c=3)
    net.conv("conv1", k=96, r=11, stride=4, pad=0)
    net.pool(size=3, stride=2)
    net.conv("conv2", k=256, r=5, pad=2)
    net.pool(size=3, stride=2)
    net.conv("conv3", k=384, r=3)
    net.conv("conv4", k=384, r=3)
    net.conv("conv5", k=256, r=3)
    return net.build("AlexNet", is_3d=False)
