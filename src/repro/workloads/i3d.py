"""I3D (Carreira & Zisserman, CVPR 2017) — inflated Inception-v1.

The state-of-the-art 3D CNN in the paper's evaluation: GoogLeNet inflated
to 3D and run over 64-frame 224x224 clips (Section VI-D notes I3D's 64
frames versus C3D's 16 as the source of its larger temporal reuse).

Structure per the public kinetics-i3d model: 7x7x7 stem with stride 2 in
all dims, two temporal-preserving max-pools, then the nine inception
modules with 3x3x3 inflations, with (2,2,2) pools before modules 4a/5a.
"""

from __future__ import annotations

from repro.workloads.inception2d import INCEPTION_MODULES, inception_module_layers
from repro.workloads.networks import Network, ShapeTracker, register


@register("i3d")
def i3d(input_hw: int = 224, frames: int = 64) -> Network:
    net = ShapeTracker(h=input_hw, w=input_hw, c=3, f=frames)
    net.conv("conv1a_7x7", k=64, r=7, t=7, stride=2, stride_f=2)
    net.pool(size=3, stride=2, size_f=1)  # MaxPool3d_2a: (1, 3, 3)
    net.conv("conv2b_1x1", k=64, r=1, t=1)
    net.conv("conv2c_3x3", k=192, r=3, t=3)
    net.pool(size=3, stride=2, size_f=1)  # MaxPool3d_3a: (1, 3, 3)
    for name, *spec in INCEPTION_MODULES:
        if name in ("4a", "5a"):
            # MaxPool3d (3,3,3)/(2,2,2) and (2,2,2)/(2,2,2) respectively.
            net.pool(size=3 if name == "4a" else 2, stride=2,
                     size_f=3 if name == "4a" else 2, stride_f=2)
        layers, out_c = inception_module_layers(
            f"mixed_{name}", net.h, net.w, net.c, tuple(spec),
            f=net.f, temporal=True,
        )
        net.layers.extend(layers)
        net.set_channels(out_c)
    return net.build("I3D", is_3d=True, input_frames=frames)
