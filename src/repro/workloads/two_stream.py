"""Two-Stream network (Simonyan & Zisserman, NIPS 2014).

Two CNN-M-2048 towers: a spatial stream over one RGB frame and a temporal
stream over a stack of 2L = 20 optical-flow channels.  The paper lists it
as "a 2D network that runs on multiple input frames" (Section VI-C); both
towers are 2D convolutions, so hardware-wise this exercises the F = T = 1
special case with an unusually deep first-layer channel count.
"""

from __future__ import annotations

from repro.workloads.networks import Network, ShapeTracker, register


def _cnn_m_tower(prefix: str, in_channels: int, input_hw: int) -> list:
    net = ShapeTracker(h=input_hw, w=input_hw, c=in_channels)
    net.conv(f"{prefix}_conv1", k=96, r=7, stride=2, pad=0)
    net.pool(size=3, stride=2)
    net.conv(f"{prefix}_conv2", k=256, r=5, stride=2, pad=1)
    net.pool(size=3, stride=2)
    net.conv(f"{prefix}_conv3", k=512, r=3)
    net.conv(f"{prefix}_conv4", k=512, r=3)
    net.conv(f"{prefix}_conv5", k=512, r=3)
    return net.layers


@register("two_stream")
def two_stream(input_hw: int = 224, flow_stack: int = 10) -> Network:
    """Both towers; the temporal stream sees ``2 * flow_stack`` channels."""
    layers = _cnn_m_tower("spatial", 3, input_hw)
    layers += _cnn_m_tower("temporal", 2 * flow_stack, input_hw)
    return Network(
        name="Two_Stream",
        layers=tuple(layers),
        is_3d=False,
        input_frames=flow_stack,
    )
