"""Network containers and the registry of evaluated CNNs.

The paper evaluates three 3D CNNs (C3D, I3D, 3D ResNet-50) and two 2D
networks (Two-Stream, AlexNet) on the accelerators (Section VI-C), and
additionally profiles Inception/GoogLeNet and 2D ResNet-50 for the
motivating footprint/reuse analysis (Figure 1).  Only convolution layers
are modelled: 3D convolution is >99.8 % of inference compute (Section II-C);
pooling shows up as shape transitions between layers.
"""

from __future__ import annotations

import dataclasses
import math
import os
from typing import Callable, Iterator

from repro.core.layer import ConvLayer


@dataclasses.dataclass(frozen=True)
class Network:
    """An ordered list of convolution layers plus metadata."""

    name: str
    layers: tuple[ConvLayer, ...]
    is_3d: bool
    input_frames: int = 1

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError(f"{self.name}: network needs at least one layer")

    def __iter__(self) -> Iterator[ConvLayer]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    @property
    def total_maccs(self) -> int:
        return sum(layer.maccs for layer in self.layers)

    @property
    def total_weight_bytes(self) -> int:
        return sum(layer.weight_bytes() for layer in self.layers)

    @property
    def average_reuse(self) -> float:
        """MACs per byte of input+weight data, averaged over layers
        weighted by footprint — Figure 1b's metric."""
        total_bytes = sum(layer.footprint_bytes() for layer in self.layers)
        return self.total_maccs / total_bytes

    def layer_named(self, name: str) -> ConvLayer:
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"{self.name} has no layer {name!r}")

    def describe(self) -> str:
        lines = [f"{self.name}: {len(self.layers)} conv layers, "
                 f"{self.total_maccs / 1e9:.2f} GMACs"]
        lines.extend("  " + layer.describe() for layer in self.layers)
        return "\n".join(lines)


class ShapeTracker:
    """Builder helper: tracks the activation volume through a network.

    Keeps (h, w, c, f) as convolutions and pooling layers transform it, so
    network definitions read like the published architecture tables.
    """

    def __init__(self, h: int, w: int, c: int, f: int = 1) -> None:
        self.h, self.w, self.c, self.f = h, w, c, f
        self.layers: list[ConvLayer] = []

    def conv(
        self,
        name: str,
        k: int,
        r: int,
        s: int | None = None,
        t: int = 1,
        *,
        stride: int = 1,
        stride_f: int = 1,
        pad: int | None = None,
        pad_f: int | None = None,
        dilation: int = 1,
        dilation_f: int = 1,
        track: bool = True,
    ) -> ConvLayer:
        """Append a convolution; by default "same"-style padding for odd
        kernels is used when ``pad`` is omitted and the kernel is odd (the
        default accounts for dilation, as dilated architectures do)."""
        s = r if s is None else s
        if pad is None:
            pad = (r - 1) * dilation // 2
        if pad_f is None:
            pad_f = (t - 1) * dilation_f // 2
        layer = ConvLayer(
            name=name,
            h=self.h,
            w=self.w,
            c=self.c,
            f=self.f,
            k=k,
            r=r,
            s=s,
            t=t,
            stride_h=stride,
            stride_w=stride,
            stride_f=stride_f,
            pad_h=pad,
            pad_w=pad,
            pad_f=pad_f,
            dilation_h=dilation,
            dilation_w=dilation,
            dilation_f=dilation_f,
        )
        self.layers.append(layer)
        if track:
            self.h, self.w, self.f = layer.out_h, layer.out_w, layer.out_f
            self.c = k
        return layer

    def pool(self, size: int, stride: int | None = None,
             size_f: int = 1, stride_f: int | None = None) -> None:
        """Max/avg pooling: shape transition only (no evaluated layer)."""
        stride = size if stride is None else stride
        stride_f = size_f if stride_f is None else stride_f
        self.h = self._pooled(self.h, size, stride)
        self.w = self._pooled(self.w, size, stride)
        self.f = self._pooled(self.f, size_f, stride_f)

    def set_channels(self, c: int) -> None:
        self.c = c

    @staticmethod
    def _pooled(extent: int, size: int, stride: int) -> int:
        return max(1, math.ceil((extent - size) / stride) + 1)

    def build(self, name: str, *, is_3d: bool, input_frames: int = 1) -> Network:
        return Network(
            name=name,
            layers=tuple(self.layers),
            is_3d=is_3d,
            input_frames=input_frames,
        )


#: Global registry filled by the per-network modules at import time.
_REGISTRY: dict[str, Callable[[], Network]] = {}

#: Process-wide build overrides (e.g. the runner's ``--frames``): applied by
#: :func:`build_network` to every factory that accepts the parameter, unless
#: the caller passes an explicit value.
_BUILD_DEFAULTS: dict[str, object] = {}


def register(name: str) -> Callable[[Callable[..., Network]], Callable[..., Network]]:
    def wrap(factory: Callable[..., Network]) -> Callable[..., Network]:
        _REGISTRY[name] = factory
        return factory

    return wrap


def network_names() -> list[str]:
    return sorted(_REGISTRY)


def set_build_defaults(**defaults) -> None:
    """Set process-wide default factory kwargs for :func:`build_network`.

    ``set_build_defaults(frames=32)`` makes every frame-flexible network
    (C3D, I3D, ...) build with 32 input frames without touching call sites —
    frame-insensitive factories (AlexNet) are unaffected because defaults
    only apply to factories whose signature accepts the parameter.  Passing
    ``None`` for a key clears it.
    """
    for key, value in defaults.items():
        if value is None:
            _BUILD_DEFAULTS.pop(key, None)
        else:
            _BUILD_DEFAULTS[key] = value


def build_network(name: str, **kwargs) -> Network:
    """Build a registered network.

    Default factory kwargs resolve like every other knob: explicit
    ``kwargs`` beat the active session's build defaults (e.g.
    ``SessionConfig.frames``), which beat the process-wide
    :func:`set_build_defaults`, which beats the ``REPRO_FRAMES``
    environment variable; factories that do not accept a defaulted
    parameter are unaffected.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown network {name!r}; available: {network_names()}"
        ) from None
    defaults = dict(_BUILD_DEFAULTS)
    if "frames" not in defaults:
        env = os.environ.get("REPRO_FRAMES")
        if env and env.strip():
            try:
                defaults["frames"] = max(1, int(env))
            except ValueError:
                raise ValueError(
                    f"REPRO_FRAMES must be an integer, got {env!r}"
                ) from None
    from repro._scope import active_value

    frames = active_value("frames")
    if frames is not None:
        defaults["frames"] = frames
    if defaults:
        import inspect

        accepted = inspect.signature(factory).parameters
        for key, value in defaults.items():
            if key in accepted and key not in kwargs:
                kwargs[key] = value
    return factory(**kwargs)
