"""repro.api: the scoped, serializable front door to the optimizer stack.

Four PRs of engine capability — dedup/parallel fan-out, pluggable config
stores, columnar evaluation, best-first search, frame-flexible builds —
were reachable only through per-call kwargs, the process-wide
:func:`~repro.optimizer.engine.set_engine_defaults` mutator and
``$REPRO_*`` environment variables.  That implicit global state cannot
express the paper's own workflow at scale: Section V's per-CNN analysis
"saved and recalled" across many differently configured sweeps (frame
counts per Frame Flexible Network-style scenarios, backends per cluster)
running side by side in one process.

This module replaces the globals with two values:

* :class:`SessionConfig` — the *entire* engine/build configuration as one
  immutable, serializable value: parallelism and executor mode, cache
  directory/backend (or a live :class:`~repro.optimizer.config_store.ConfigStore`),
  vectorize, search-order, kernel-backend and table-memory-cap speed
  knobs, frame-flexible build defaults,
  the sharded store's manifest-compaction threshold, and telemetry sinks.
  Build it directly, from the environment (:meth:`SessionConfig.from_env`),
  from a dict (:meth:`SessionConfig.from_dict`), or from a TOML/JSON file
  (:meth:`SessionConfig.from_file`); :meth:`SessionConfig.resolve` layers
  all of them under the documented precedence **explicit > dict > file >
  environment > built-in defaults**.
* :class:`Session` — binds one config and exposes the whole surface as
  methods: :meth:`~Session.optimize_layer`, :meth:`~Session.optimize_network`,
  :meth:`~Session.sweep` (structured per-network results plus merged cache
  statistics), :meth:`~Session.trace` / :meth:`~Session.simulate` for the
  validation simulators, :meth:`~Session.build_network` and
  :meth:`~Session.engine`.  As a context manager it *scopes* the
  configuration (contextvar-based, see :mod:`repro._scope`): inside
  ``with session:`` every legacy entry point — ``optimize_network``,
  ``optimize_layer``, the baselines, the simulators' vectorize default,
  ``build_network`` frames — resolves through the session instead of the
  process globals, nested blocks restore the outer session on exit, and
  two sessions entered in two threads never observe each other.  Results
  are bit-identical to the legacy global-default paths for the same knob
  values.

Quick start::

    from repro import Session, SessionConfig, morph

    config = SessionConfig(parallelism=8, cache_dir="~/.cache/repro",
                           cache_backend="sharded", frames=32)
    with Session(config) as session:
        sweep = session.sweep(["c3d", "i3d"], fast=True)
        for entry in sweep.entries:
            print(entry.result.network_name, entry.result.total_energy_pj)
        print(sweep.describe())     # engine + merged cache statistics

Closing a session (the ``with`` exit, or :meth:`Session.close`) flushes
the process's cache-statistics deltas into a small JSON sidecar inside
the session's persistent store (``CACHE_STATS.json``), so sweeps spread
over many processes sharing one store report merged totals — the
cross-process completion of PR 4's per-process counters.

Deprecation path
----------------
:func:`~repro.optimizer.engine.set_engine_defaults` now emits a
:class:`DeprecationWarning`; ``$REPRO_*``-only workflows keep working (a
default session reads them) but new code should materialise them once via
:meth:`SessionConfig.from_env` and scope explicitly.  The module-level
``optimize_network`` / ``optimize_layer`` remain supported shims that
route through the currently scoped session.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import threading
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro import _scope
from repro.arch.accelerator import AcceleratorConfig
from repro.core.dataflow import Dataflow
from repro.core.layer import ConvLayer
from repro.core.tiling import Precision
from repro.optimizer import engine as _engine
from repro.optimizer.config_store import CACHE_BACKENDS, ConfigStore
from repro.optimizer.engine import (
    BackendCacheStats,
    EngineStats,
    OptimizerEngine,
)
from repro.optimizer.search import (
    LayerResult,
    NetworkResult,
    OptimizerOptions,
)

__all__ = [
    "Session",
    "SessionConfig",
    "SweepEntry",
    "SweepResult",
    "current_session",
    "default_session",
]


def _parse_bool(text: str) -> bool:
    # Strict: unknown tokens raise (callers wrap the error with the
    # variable name) instead of silently meaning True — ``"flase"`` is a
    # typo, not an opt-in.
    lowered = text.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ValueError(f"not a boolean: {text!r}")


def _clamped_positive_int(text: str) -> int:
    # Clamp like the legacy env parsing (default_parallelism,
    # build_network's REPRO_FRAMES): 0 means "minimum", not an error.
    return max(1, int(text))


#: ``$REPRO_*`` variable -> (config field, parser).  This is the single
#: source of truth for :meth:`SessionConfig.from_env`.
_ENV_FIELDS: dict[str, tuple[str, Any]] = {
    "REPRO_PARALLELISM": ("parallelism", _clamped_positive_int),
    "REPRO_PARALLELISM_MODE": ("parallelism_mode", str.lower),
    "REPRO_CACHE_DIR": ("cache_dir", Path),
    "REPRO_CACHE_BACKEND": ("cache_backend", str.lower),
    "REPRO_USE_CACHE": ("use_cache", _parse_bool),
    "REPRO_VECTORIZE": ("vectorize", _parse_bool),
    "REPRO_SEARCH_ORDER": ("search_order", str.lower),
    "REPRO_BUDGET_MS": ("budget_ms", float),
    "REPRO_KERNEL_BACKEND": ("kernel_backend", str.lower),
    "REPRO_MAX_TABLE_BYTES": ("max_table_bytes", int),
    "REPRO_FRAMES": ("frames", _clamped_positive_int),
    "REPRO_BENCH_DIR": ("bench_dir", Path),
    "REPRO_MANIFEST_COMPACT_RATIO": ("manifest_compact_ratio", float),
}

#: SessionConfig fields deliberately *not* materialisable from the
#: environment (checked by the signature-completeness lint rule).
#: ``persist_statistics`` controls whether a closing session writes to
#: shared sidecar files — a cross-process env default would let one
#: shell's export silently disable accounting for every session in the
#: tree, so it is settable only explicitly (argument / dict / file).
_ENV_EXCLUDED = frozenset({"persist_statistics"})


@dataclasses.dataclass(frozen=True)
class SessionConfig:
    """The full engine/build configuration as one immutable value.

    Every field defaults to ``None`` — "defer to the next layer down"
    (process defaults, then ``$REPRO_*``, then built-ins), so an empty
    config behaves exactly like the legacy global-default paths and a
    partially filled one overrides only what it names.  Instances are
    hashable, comparable and (unless ``cache_backend`` is a live
    :class:`~repro.optimizer.config_store.ConfigStore`) serializable via
    :meth:`to_dict` / :meth:`to_json` and re-loadable via
    :meth:`from_dict` / :meth:`from_file`.
    """

    #: Worker count for unique-layer searches (1 = in-process serial).
    parallelism: int | None = None
    #: Executor kind: ``"process"`` or ``"thread"``.
    parallelism_mode: str | None = None
    #: Directory of the persistent config cache (``None``: no disk cache
    #: unless a lower layer configures one).
    cache_dir: Path | None = None
    #: Store layout (``"local"`` / ``"sharded"`` / ``"memory"``) or a live
    #: :class:`ConfigStore` instance (not serializable).
    cache_backend: str | ConfigStore | None = None
    #: ``False`` disables the in-process memo *and* the persistent cache.
    use_cache: bool | None = None
    #: Columnar batch evaluation (pure speed knob; results identical).
    vectorize: bool | None = None
    #: Candidate-block visit order: ``"best_first"`` or ``"legacy"``
    #: (pure speed knob; results identical).
    search_order: str | None = None
    #: Anytime-search budget per layer search, in milliseconds (``None``
    #: = run to exhaustion).  Budgeted results are bit-identical to the
    #: unbudgeted search whenever the budget is not hit; when it is, the
    #: best-so-far configuration is returned with
    #: :attr:`~repro.optimizer.search.LayerResult.bound_gap` telemetry
    #: and is never cached.
    budget_ms: float | None = None
    #: Kernel-execution backend for columnar passes — ``"numpy"`` or
    #: ``"compiled"`` (JIT via :mod:`repro.core.backend`; silently
    #: identical to ``"numpy"`` when no JIT is installed).  Pure speed
    #: knob; scores, winners and simulator counters are bit-identical.
    kernel_backend: str | None = None
    #: Memory cap (bytes) on any one columnar candidate/schedule table;
    #: when set, columnar passes stream row chunks with carried
    #: reductions (bit-identical to unchunked).  ``None`` = uncapped.
    max_table_bytes: int | None = None
    #: Input frames for frame-flexible network builds (C3D, I3D, ...).
    frames: int | None = None
    #: Where session/bench telemetry JSON lands (``SESSION_STATS.json``).
    bench_dir: Path | None = None
    #: Sharded-store manifest auto-compaction threshold (lines per live
    #: key; ``0`` disables, ``None`` keeps the store default).
    manifest_compact_ratio: float | None = None
    #: Fold cache-statistics deltas into the store's sidecar on session
    #: close (``None`` = yes, the default).
    persist_statistics: bool | None = None

    def __post_init__(self) -> None:
        # Coerce numerics up front (a quoted "4" in a JSON/TOML config
        # should fail — or convert — here, not deep inside the engine).
        for field, convert in (
            ("parallelism", int),
            ("frames", int),
            ("manifest_compact_ratio", float),
            ("budget_ms", float),
            ("max_table_bytes", int),
        ):
            value = getattr(self, field)
            if value is not None:
                try:
                    object.__setattr__(self, field, convert(value))
                except (TypeError, ValueError):
                    raise ValueError(
                        f"{field} must be a number, got {value!r}"
                    ) from None
        # Booleans likewise: a JSON/TOML "false" *string* must not reach
        # the engine as a truthy value.
        for field in ("use_cache", "vectorize", "persist_statistics"):
            value = getattr(self, field)
            if value is None or isinstance(value, bool):
                continue
            if isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in ("1", "true", "yes", "on"):
                    object.__setattr__(self, field, True)
                    continue
                if lowered in ("0", "false", "no", "off"):
                    object.__setattr__(self, field, False)
                    continue
            elif isinstance(value, int) and value in (0, 1):
                object.__setattr__(self, field, bool(value))
                continue
            raise ValueError(f"{field} must be a boolean, got {value!r}")
        if self.parallelism is not None and self.parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        if self.parallelism_mode is not None:
            _engine._check_mode(self.parallelism_mode)
        if self.cache_backend is not None:
            _engine._check_backend(self.cache_backend)
        if self.search_order not in (None, "best_first", "legacy"):
            raise ValueError(
                f"unknown search_order {self.search_order!r}; "
                "choose 'best_first' or 'legacy'"
            )
        if self.budget_ms is not None and self.budget_ms < 0:
            raise ValueError(
                f"budget_ms must be >= 0 (milliseconds), got {self.budget_ms!r}"
            )
        if self.kernel_backend is not None:
            from repro.core.backend import check_backend_name

            check_backend_name(self.kernel_backend)
        if self.max_table_bytes is not None and self.max_table_bytes < 1:
            raise ValueError(
                "max_table_bytes must be a positive byte count, "
                f"got {self.max_table_bytes!r}"
            )
        if self.frames is not None and self.frames < 1:
            raise ValueError("frames must be >= 1")
        if (
            self.manifest_compact_ratio is not None
            and self.manifest_compact_ratio < 0
        ):
            raise ValueError("manifest_compact_ratio must be >= 0")
        for field in ("cache_dir", "bench_dir"):
            value = getattr(self, field)
            if value is not None and not isinstance(value, Path):
                object.__setattr__(self, field, Path(value))

    # ------------------------------------------------------------------
    # Construction layers
    # ------------------------------------------------------------------
    @classmethod
    def field_names(cls) -> tuple[str, ...]:
        return tuple(f.name for f in dataclasses.fields(cls))

    @classmethod
    def from_env(cls, environ: Mapping[str, str] | None = None) -> "SessionConfig":
        """Materialise the ``$REPRO_*`` environment variables as a config.

        Unset (or empty) variables leave their field ``None``; parse
        failures raise ``ValueError`` naming the variable.
        """
        environ = os.environ if environ is None else environ
        values: dict[str, Any] = {}
        for variable, (field, parse) in _ENV_FIELDS.items():
            raw = environ.get(variable)
            if raw is None or raw.strip() == "":
                continue
            try:
                values[field] = parse(raw.strip())
            except (TypeError, ValueError):
                raise ValueError(
                    f"{variable} could not be parsed: {raw!r}"
                ) from None
        return cls(**values)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SessionConfig":
        """Build a config from a plain mapping (JSON/TOML payloads).

        Unknown keys raise ``ValueError`` (typo protection — a silently
        ignored ``"paralelism"`` would be a long afternoon).
        """
        known = cls.field_names()
        unknown = sorted(set(data) - set(known))
        if unknown:
            raise ValueError(
                f"unknown SessionConfig field(s) {unknown}; known: {list(known)}"
            )
        return cls(**{key: value for key, value in data.items()})

    @classmethod
    def from_file(cls, path: str | Path) -> "SessionConfig":
        """Load a config from a TOML (``.toml``) or JSON file.

        TOML is tried for any non-``.json`` suffix; a top-level
        ``[repro]`` or ``[session]`` table is used when present so configs
        can live inside a larger project file.
        """
        path = Path(path).expanduser()
        if path.suffix.lower() == ".json":
            data = json.loads(path.read_text())
        else:
            import tomllib

            data = tomllib.loads(path.read_text())
        for table in ("repro", "session"):
            if isinstance(data.get(table), dict):
                data = data[table]
                break
        if not isinstance(data, dict):
            raise ValueError(f"{path}: expected a table/object of fields")
        return cls.from_dict(data)

    def merged(self, overlay: "SessionConfig") -> "SessionConfig":
        """A config where ``overlay``'s non-``None`` fields win over
        ``self``'s (the precedence-layering primitive)."""
        values = {
            name: (
                getattr(overlay, name)
                if getattr(overlay, name) is not None
                else getattr(self, name)
            )
            for name in self.field_names()
        }
        return type(self)(**values)

    @classmethod
    def resolve(
        cls,
        *,
        file: str | Path | None = None,
        data: Mapping[str, Any] | None = None,
        env: bool | Mapping[str, str] = True,
        **explicit: Any,
    ) -> "SessionConfig":
        """Layer every configuration source under the documented
        precedence: **explicit kwargs > ``data`` dict > ``file`` >
        environment > built-in defaults** (later layers only fill fields
        the stronger ones left ``None``).

        ``env`` may be ``False`` (skip the environment), ``True`` (read
        ``os.environ``) or a mapping (for tests).
        """
        config = cls()
        if env:
            config = config.merged(
                cls.from_env(None if env is True else env)
            )
        if file is not None:
            config = config.merged(cls.from_file(file))
        if data is not None:
            config = config.merged(cls.from_dict(data))
        explicit = {k: v for k, v in explicit.items() if v is not None}
        if explicit:
            config = config.merged(cls.from_dict(explicit))
        return config

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-able dict of the non-``None`` fields.

        Raises ``ValueError`` when ``cache_backend`` is a live
        :class:`ConfigStore` instance — pass a backend *name* (one of
        ``{'local', 'sharded', 'memory'}``) for serializable configs.
        """
        if isinstance(self.cache_backend, ConfigStore):
            raise ValueError(
                "SessionConfig with a live ConfigStore instance is not "
                f"serializable; use a backend name from {CACHE_BACKENDS}"
            )
        out: dict[str, Any] = {}
        for name in self.field_names():
            value = getattr(self, name)
            if value is None:
                continue
            out[name] = str(value) if isinstance(value, Path) else value
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def save(self, path: str | Path) -> None:
        """Write the config as JSON (reload with :meth:`from_file`)."""
        Path(path).write_text(self.to_json() + "\n")

    def describe(self) -> str:
        set_fields = _safe_dict(self)
        if not set_fields:
            return "SessionConfig(defaults)"
        body = ", ".join(f"{k}={v}" for k, v in sorted(set_fields.items()))
        return f"SessionConfig({body})"


def _safe_dict(config: SessionConfig) -> dict[str, Any]:
    out = {}
    for name in config.field_names():
        value = getattr(config, name)
        if value is None:
            continue
        if isinstance(value, ConfigStore):
            value = value.describe()
        out[name] = str(value) if isinstance(value, Path) else value
    return out


# ----------------------------------------------------------------------
# Sweep results
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class SweepEntry:
    """One network's outcome inside a :meth:`Session.sweep`."""

    network_name: str
    result: NetworkResult
    #: Engine counters for this network's sweep (dedup/memo/disk hits).
    stats: EngineStats


@dataclasses.dataclass(frozen=True)
class SweepResult:
    """Structured outcome of :meth:`Session.sweep`."""

    entries: tuple[SweepEntry, ...]
    #: Per-store-identity recall statistics, *merged* across processes:
    #: store's persisted sidecar plus this session's unflushed deltas.
    cache_statistics: dict[str, BackendCacheStats]

    @property
    def results(self) -> tuple[NetworkResult, ...]:
        return tuple(entry.result for entry in self.entries)

    def entry(self, network_name: str) -> SweepEntry:
        for candidate in self.entries:
            if candidate.network_name == network_name:
                return candidate
        raise KeyError(network_name)

    def describe(self) -> str:
        lines = []
        for entry in self.entries:
            lines.append(
                f"{entry.network_name}: "
                f"{entry.result.total_energy_pj / 1e6:.1f} uJ, "
                f"{entry.result.total_cycles / 1e6:.1f} Mcycles "
                f"[{entry.stats.describe()}]"
            )
        if self.cache_statistics:
            for kind, stats in sorted(self.cache_statistics.items()):
                lines.append(f"config cache [{kind}]: {stats.describe()}")
        else:
            lines.append("config cache: no persistent-store activity")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The session
# ----------------------------------------------------------------------
class Session:
    """One scoped view of the optimizer/simulator/experiment stack.

    A session binds a :class:`SessionConfig` and offers the full surface
    as methods; used as a context manager it additionally *scopes* the
    configuration so every legacy entry point called inside the block
    resolves through it (see the module docstring).  Sessions are
    re-entrant and thread-compatible: the scoping is per-thread
    (contextvars), while the engine caches the methods hit are the
    process-wide ones — deliberately, so concurrent sessions still share
    search results where signatures agree.
    """

    def __init__(
        self, config: SessionConfig | None = None, **overrides: Any
    ) -> None:
        config = config or SessionConfig()
        if overrides:
            config = config.merged(SessionConfig.from_dict(overrides))
        self.config = config
        #: Aggregated engine counters across every call on this session.
        self.stats = EngineStats()
        self._lock = threading.Lock()
        # Process-wide counter state when this session was created: the
        # base of the session-relative (merged=False) statistics view.
        self._creation_snapshot = _engine.cache_statistics()
        # Per-thread LIFO of contextvar tokens: ``with session:`` nests
        # on one session object and co-exists across threads.
        self._local = threading.local()
        # Serve engines opened through serve(); close() shuts them down
        # (drains in-flight requests) before flushing telemetry.
        self._serve_engines: list[Any] = []

    # ------------------------------------------------------------------
    # Scoping
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def activate(self):
        """Scope this session's config for the dynamic extent of the
        block (re-entrant; restores the outer scope — session or none —
        on exit)."""
        token = _scope.activate(self.config)
        try:
            yield self
        finally:
            _scope.deactivate(token)

    def _tokens(self) -> list:
        stack = getattr(self._local, "tokens", None)
        if stack is None:
            stack = self._local.tokens = []
        return stack

    def __enter__(self) -> "Session":
        self._tokens().append(_scope.activate(self.config))
        return self

    def __exit__(self, *exc_info) -> None:
        _scope.deactivate(self._tokens().pop())
        self.flush_statistics()

    def close(self) -> None:
        """Shut the session down: the documented, idempotent shutdown
        contract.

        In order: (1) every serve engine opened through :meth:`serve`
        stops admitting — new requests are rejected with reason
        ``"closed"`` — and in-flight serve requests are *drained* (run
        to completion), so their engine counters land before telemetry
        is persisted; (2) :meth:`flush_statistics` folds the process's
        unflushed cache-statistics deltas into the store sidecar.

        Safe to call twice (and safe concurrently with ``with session:``
        exit): draining an already-shut engine is a no-op, and flushes
        consume from one process-wide baseline so nothing is persisted
        twice.  The session's direct optimize surface stays usable after
        ``close()`` — only its serving side is terminal.
        """
        with self._lock:
            engines = list(self._serve_engines)
        for engine in engines:
            engine.shutdown(wait=True)
        self.flush_statistics()

    # ------------------------------------------------------------------
    # Optimizer surface
    # ------------------------------------------------------------------
    def engine(
        self,
        arch: AcceleratorConfig,
        options: OptimizerOptions | None = None,
        **knobs: Any,
    ) -> OptimizerEngine:
        """An :class:`OptimizerEngine` resolved under this session's
        config (``knobs`` are per-call engine overrides, strongest
        layer)."""
        with self.activate():
            return OptimizerEngine(arch, options, **knobs)

    def optimize_layer(
        self,
        layer: ConvLayer,
        arch: AcceleratorConfig,
        options: OptimizerOptions | None = None,
        **knobs: Any,
    ) -> LayerResult:
        """Single-layer search through the engine's shared caches."""
        engine = self.engine(arch, options, **knobs)
        result = engine.optimize_layers((layer,))[0]
        self._accumulate(engine.stats)
        return result

    def optimize_network(
        self,
        layers: Iterable[ConvLayer],
        arch: AcceleratorConfig,
        options: OptimizerOptions | None = None,
        *,
        network_name: str = "network",
        **knobs: Any,
    ) -> NetworkResult:
        """Network sweep (accepts a layer iterable or a
        :class:`~repro.workloads.networks.Network`)."""
        network_name, layers = _coerce_network(layers, network_name)
        engine = self.engine(arch, options, **knobs)
        result = engine.optimize_network(layers, network_name=network_name)
        self._accumulate(engine.stats)
        return result

    def sweep(
        self,
        networks: Sequence[Any],
        arch: AcceleratorConfig | None = None,
        options: OptimizerOptions | None = None,
        *,
        fast: bool = True,
        **knobs: Any,
    ) -> SweepResult:
        """Optimize several networks and report structured results.

        ``networks`` mixes registry names and
        :class:`~repro.workloads.networks.Network` instances; ``arch``
        defaults to the Morph machine; ``options`` defaults to the
        experiments' shared preset (``fast`` selects the coarse one).
        The returned :class:`SweepResult` carries per-network engine
        counters plus cache statistics merged with the store's persisted
        sidecar — the cross-process totals.
        """
        if arch is None:
            from repro.arch.accelerator import morph

            arch = morph()
        if options is None:
            options = (
                OptimizerOptions.fast() if fast else OptimizerOptions()
            )
        entries = []
        with self.activate():
            for item in networks:
                network = (
                    self.build_network(item) if isinstance(item, str) else item
                )
                engine = OptimizerEngine(arch, options, **knobs)
                result = engine.optimize_network(
                    network.layers, network_name=network.name
                )
                self._accumulate(engine.stats)
                entries.append(
                    SweepEntry(
                        network_name=network.name,
                        result=result,
                        stats=engine.stats,
                    )
                )
        return SweepResult(
            entries=tuple(entries),
            cache_statistics=self.cache_statistics(merged=True),
        )

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve(self, config: Any = None, **overrides: Any):
        """Open a :class:`repro.serve.ServeEngine` on this session.

        The engine serves optimize requests (each optionally carrying its
        own :class:`SessionConfig` overlay on this session's config) with
        request coalescing, per-tenant quotas, backpressure and
        deadline-to-``budget_ms`` SLO mapping — see :mod:`repro.serve`.
        ``config`` is a :class:`repro.serve.ServeConfig`; ``overrides``
        are its field names (``max_workers``, ``max_queue_depth``,
        ``tenant_rate``, ``tenant_burst``, ``coalesce``,
        ``default_deadline_ms``), resolved over ``$REPRO_SERVE_*``.

        The engine is tracked by the session: :meth:`close` shuts it
        down (drains in-flight requests) before flushing telemetry.
        """
        from repro.serve import ServeEngine

        engine = ServeEngine(session=self, config=config, **overrides)
        with self._lock:
            self._serve_engines.append(engine)
        return engine

    # ------------------------------------------------------------------
    # Workloads and simulators
    # ------------------------------------------------------------------
    def build_network(self, name: str, **kwargs: Any):
        """Build a registered network under this session's build defaults
        (``frames`` et al.); explicit kwargs win."""
        from repro.workloads import build_network

        with self.activate():
            return build_network(name, **kwargs)

    def trace(
        self,
        dataflow: Dataflow,
        precision: Precision | None = None,
        *,
        vectorize: bool | None = None,
        kernel_backend: str | None = None,
        max_table_bytes: int | None = None,
    ):
        """Trace-simulate a schedule (validates the access model) under
        this session's vectorize / kernel-backend / table-cap defaults."""
        from repro.core.tiling import DEFAULT_PRECISION
        from repro.sim.trace import trace_dataflow

        with self.activate():
            return trace_dataflow(
                dataflow,
                DEFAULT_PRECISION if precision is None else precision,
                vectorize=vectorize,
                kernel_backend=kernel_backend,
                max_table_bytes=max_table_bytes,
            )

    def simulate(
        self,
        dataflow: Dataflow,
        arch: AcceleratorConfig,
        *,
        vectorize: bool | None = None,
        kernel_backend: str | None = None,
        max_table_bytes: int | None = None,
    ):
        """Pipeline-simulate a schedule (validates the cycle model) under
        this session's vectorize / kernel-backend / table-cap defaults."""
        from repro.sim.pipeline_sim import simulate_pipeline

        with self.activate():
            return simulate_pipeline(
                dataflow,
                arch,
                vectorize=vectorize,
                kernel_backend=kernel_backend,
                max_table_bytes=max_table_bytes,
            )

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _accumulate(self, stats: EngineStats) -> None:
        with self._lock:
            for field in dataclasses.fields(EngineStats):
                setattr(
                    self.stats,
                    field.name,
                    getattr(self.stats, field.name)
                    + getattr(stats, field.name),
                )

    def store(self) -> ConfigStore | None:
        """The persistent config store this session resolves to (``None``
        for in-memory-only operation)."""
        with self.activate():
            return _engine.resolve_store()

    def cache_statistics(
        self, *, merged: bool = False
    ) -> dict[str, BackendCacheStats]:
        """Recall statistics keyed by store identity.

        ``merged=False``: this process's counter movement since the
        session was created (the counters are process-wide, so this is a
        window, not strict per-session attribution).  ``merged=True``:
        the persisted sidecar of the session's store plus the process's
        not-yet-flushed movement — the cross-process totals, with no
        delta counted twice.
        """
        totals: dict[str, dict[str, int]] = {}
        if merged:
            store = self.store()
            if store is not None:
                for kind, counters in store.load_statistics().items():
                    into = totals.setdefault(kind, {})
                    for name, value in counters.items():
                        into[name] = into.get(name, 0) + int(value)
            deltas = _engine.peek_unflushed_statistics()
        else:
            deltas = _engine._statistics_deltas(
                _engine.cache_statistics(), self._creation_snapshot
            )
        for kind, counters in deltas.items():
            into = totals.setdefault(kind, {})
            for name, value in counters.items():
                into[name] = into.get(name, 0) + value
        known = {f.name for f in dataclasses.fields(BackendCacheStats)}
        return {
            kind: BackendCacheStats(
                **{k: v for k, v in counters.items() if k in known}
            )
            for kind, counters in totals.items()
        }

    def flush_statistics(self) -> bool:
        """Fold the process's unflushed cache-statistics deltas into the
        store's JSON sidecar (and the session-summary telemetry sink,
        when ``bench_dir`` is set).  Returns ``True`` if a sidecar write
        happened.  Called automatically on ``with`` exit and
        :meth:`close`.

        Flushes consume from one process-wide baseline, so overlapping
        sessions never persist the same movement twice; a session that
        cannot persist (no store, or ``persist_statistics=False``) leaves
        the baseline untouched for one that can.
        """
        wrote = False
        with self._lock:
            if self.config.persist_statistics is not False:
                store = self.store()
                if store is not None:
                    deltas = _engine.consume_unflushed_statistics()
                    if deltas:
                        wrote = store.merge_statistics(deltas)
        if self.config.bench_dir is not None:
            self._write_summary()
        return wrote

    def _write_summary(self) -> None:
        """Best-effort session-summary telemetry (``SESSION_STATS.json``)."""
        payload = {
            "schema_version": 1,
            "config": _safe_dict(self.config),
            "engine_stats": dataclasses.asdict(self.stats),
            "cache_statistics": {
                kind: dataclasses.asdict(stats)
                for kind, stats in self.cache_statistics(merged=True).items()
            },
        }
        try:
            directory = Path(self.config.bench_dir)
            directory.mkdir(parents=True, exist_ok=True)
            (directory / "SESSION_STATS.json").write_text(
                json.dumps(payload, indent=2, sort_keys=True)
            )
        except OSError:
            pass

    def describe_statistics(self) -> str:
        """One line of engine counters plus one per store identity (merged
        with the persisted sidecar) — the runner's end-of-run summary."""
        lines = [f"engine: {self.stats.describe()}"]
        stats = self.cache_statistics(merged=True)
        if not stats:
            lines.append("config cache: no persistent-store activity")
        else:
            lines.extend(
                f"config cache [{kind}]: {entry.describe()}"
                for kind, entry in sorted(stats.items())
            )
        return "\n".join(lines)

    def describe(self) -> str:
        return f"Session({self.config.describe()})"


def _coerce_network(layers, network_name):
    """Accept a Network instance (name comes along) or a layer iterable."""
    name = getattr(layers, "name", None)
    if name is not None and hasattr(layers, "layers"):
        if network_name == "network":
            network_name = name
        layers = layers.layers
    return network_name, tuple(layers)


# ----------------------------------------------------------------------
# The default session (what the legacy shims route through)
# ----------------------------------------------------------------------
_DEFAULT_SESSION: Session | None = None
_DEFAULT_LOCK = threading.Lock()


def default_session() -> Session:
    """The process-wide default session: an empty config, so resolution
    falls through to the legacy process defaults and ``$REPRO_*``
    variables — bit-identical to the pre-session behaviour."""
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        with _DEFAULT_LOCK:
            if _DEFAULT_SESSION is None:
                _DEFAULT_SESSION = Session()
    return _DEFAULT_SESSION


class _ScopedSessionView(Session):
    """A throwaway session around an externally activated config.

    When a caller is already *inside* ``with session:`` (or a bare
    ``activate()`` block), :func:`current_session` must honour that scope
    even though the original Session object is not reachable through the
    contextvar (only its config is).  A view re-binds the active config;
    engine caches are process-wide, so behaviour is identical.
    """


def current_session() -> Session:
    """The session whose scope is active, or the process default.

    The legacy ``optimize_network`` / ``optimize_layer`` shims call this,
    so ``with Session(...):`` blocks configure them transparently.
    """
    config = _scope.active_config()
    if config is None:
        return default_session()
    return _ScopedSessionView(config)
