"""Micro-benchmarks of the core analytic models and the optimizer.

These time the building blocks that every experiment leans on — useful for
tracking performance regressions in the model code itself (standard
multi-round pytest-benchmark timing, unlike the one-shot figure benches).
"""

from repro.arch.accelerator import morph
from repro.core.access_model import compute_traffic
from repro.core.dataflow import Dataflow, Parallelism
from repro.core.evaluate import evaluate
from repro.core.layer import ConvLayer
from repro.core.loopnest import LoopOrder
from repro.core.tiling import TileHierarchy, TileShape
from repro.optimizer.search import LayerOptimizer, OptimizerOptions
from repro.sim.trace import trace_dataflow

LAYER = ConvLayer(
    "c3d2", h=56, w=56, c=64, f=16, k=128, r=3, s=3, t=3,
    pad_h=1, pad_w=1, pad_f=1,
)
HIERARCHY = TileHierarchy(
    LAYER,
    (
        TileShape(w=28, h=14, c=64, k=8, f=8),
        TileShape(w=14, h=7, c=32, k=8, f=4),
        TileShape(w=7, h=7, c=8, k=8, f=2),
    ),
)
DATAFLOW = Dataflow(
    LoopOrder.parse("WHCKF"),
    LoopOrder.parse("CFWHK"),
    HIERARCHY,
    Parallelism(h=2, w=2, k=24),
)


def test_bench_compute_traffic(benchmark):
    """One analytic traffic evaluation (the optimizer's inner loop)."""
    report = benchmark(compute_traffic, DATAFLOW)
    assert report.maccs == LAYER.maccs


def test_bench_full_evaluation(benchmark):
    """Traffic + performance + energy for one configuration."""
    arch = morph()
    ev = benchmark(evaluate, DATAFLOW, arch, check_capacity=False)
    assert ev.total_energy_pj > 0


def test_bench_layer_optimization(benchmark):
    """A complete per-layer configuration search (fast preset)."""
    small = ConvLayer(
        "c3d5a", h=7, w=7, c=512, f=2, k=512, r=3, s=3, t=3,
        pad_h=1, pad_w=1, pad_f=1,
    )
    optimizer = LayerOptimizer(morph(), OptimizerOptions.fast())
    result = benchmark.pedantic(
        optimizer.optimize, args=(small,), rounds=3, iterations=1
    )
    assert result.best.total_energy_pj > 0


def test_bench_trace_simulator(benchmark):
    """The validation walker on a small layer (exponentially slower than
    the analytic model it checks — that gap is the point)."""
    layer = ConvLayer("small", h=12, w=12, c=8, f=6, k=8, r=3, s=3, t=3)
    hierarchy = TileHierarchy(
        layer,
        (
            TileShape(w=5, h=10, c=4, k=4, f=2),
            TileShape(w=5, h=5, c=2, k=2, f=2),
        ),
    )
    dataflow = Dataflow(
        LoopOrder.parse("WHCKF"), LoopOrder.parse("CFWHK"), hierarchy
    )
    report = benchmark(trace_dataflow, dataflow)
    assert report.boundaries[0].fills
