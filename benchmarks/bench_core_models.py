"""Micro-benchmarks of the core analytic models and the optimizer.

These time the building blocks that every experiment leans on — useful for
tracking performance regressions in the model code itself (standard
multi-round pytest-benchmark timing, unlike the one-shot figure benches).

``test_bench_cold_sweep_vectorized_vs_scalar`` is the columnar pipeline's
acceptance gate: a cold C3D sweep (cache off, serial) must be >= 3x faster
through :mod:`repro.core.batch` than through the scalar reference path,
with identical chosen configurations; the measured ratio is recorded in
``BENCH_core_models.json``.
"""

import time

import pytest

from repro.arch.accelerator import morph
from repro.core.access_model import compute_traffic
from repro.core.dataflow import Dataflow, Parallelism
from repro.core.evaluate import evaluate
from repro.core.layer import ConvLayer
from repro.core.loopnest import LoopOrder
from repro.core.tiling import TileHierarchy, TileShape
from repro.optimizer.search import (
    LayerOptimizer,
    OptimizerOptions,
    clear_cache,
    optimize_network,
)
from repro.sim.trace import trace_dataflow
from repro.workloads import c3d, i3d

LAYER = ConvLayer(
    "c3d2", h=56, w=56, c=64, f=16, k=128, r=3, s=3, t=3,
    pad_h=1, pad_w=1, pad_f=1,
)
HIERARCHY = TileHierarchy(
    LAYER,
    (
        TileShape(w=28, h=14, c=64, k=8, f=8),
        TileShape(w=14, h=7, c=32, k=8, f=4),
        TileShape(w=7, h=7, c=8, k=8, f=2),
    ),
)
DATAFLOW = Dataflow(
    LoopOrder.parse("WHCKF"),
    LoopOrder.parse("CFWHK"),
    HIERARCHY,
    Parallelism(h=2, w=2, k=24),
)


def test_bench_compute_traffic(benchmark):
    """One analytic traffic evaluation (the optimizer's inner loop)."""
    report = benchmark(compute_traffic, DATAFLOW)
    assert report.maccs == LAYER.maccs


def test_bench_full_evaluation(benchmark):
    """Traffic + performance + energy for one configuration."""
    arch = morph()
    ev = benchmark(evaluate, DATAFLOW, arch, check_capacity=False)
    assert ev.total_energy_pj > 0


def test_bench_layer_optimization(benchmark, record_bench):
    """A complete per-layer configuration search (fast preset)."""
    small = ConvLayer(
        "c3d5a", h=7, w=7, c=512, f=2, k=512, r=3, s=3, t=3,
        pad_h=1, pad_w=1, pad_f=1,
    )
    optimizer = LayerOptimizer(morph(), OptimizerOptions.fast())
    result = benchmark.pedantic(
        optimizer.optimize, args=(small,), rounds=3, iterations=1
    )
    assert result.best.total_energy_pj > 0
    record_bench(
        layer_opt_candidates=result.considered,
        layer_opt_objective_pj=result.best.total_energy_pj,
    )


def test_bench_cold_sweep_vectorized_vs_scalar(benchmark, record_bench):
    """Cold C3D sweep: columnar batch pipeline vs scalar reference.

    Cache off, parallelism pinned to 1, same options — the only variable
    is the evaluator.  Chosen configurations and scores must be identical;
    the batch path must be at least 3x faster.
    """
    network = c3d()
    options = OptimizerOptions.fast()

    def cold(vectorize: bool):
        clear_cache()
        return optimize_network(
            network.layers, morph(), options,
            network_name=network.name, use_cache=False, parallelism=1,
            vectorize=vectorize,
        )

    start = time.perf_counter()
    scalar = cold(False)
    scalar_s = time.perf_counter() - start

    batch = benchmark.pedantic(
        cold, args=(True,), rounds=1, iterations=1, warmup_rounds=0
    )
    batch_s = benchmark.stats.stats.total

    for a, b in zip(scalar.layers, batch.layers):
        assert a.best.dataflow == b.best.dataflow, a.layer.name
        assert a.score == b.score, a.layer.name
    speedup = scalar_s / batch_s
    record_bench(
        cold_sweep_scalar_s=round(scalar_s, 3),
        cold_sweep_vectorized_s=round(batch_s, 3),
        cold_sweep_speedup=round(speedup, 2),
        cold_sweep_candidates=sum(r.considered for r in batch.layers),
        cold_sweep_objective_pj=batch.total_energy_pj,
    )
    assert speedup >= 3.0, f"columnar sweep only {speedup:.2f}x faster"


def test_bench_best_first_vs_legacy_order(record_bench):
    """Best-first block ordering vs the legacy enumeration (cold C3D).

    Same candidates, same prune, different visit order: best-first must
    choose bit-identical configurations while fully evaluating strictly
    fewer candidates (the lower bound bites earlier); candidate counts
    and wall times land in ``BENCH_core_models.json``.
    """
    network = c3d()
    options = OptimizerOptions.fast()

    def cold(order: str):
        clear_cache()
        start = time.perf_counter()
        result = optimize_network(
            network.layers, morph(), options.with_(search_order=order),
            network_name=network.name, use_cache=False, parallelism=1,
        )
        return result, time.perf_counter() - start

    legacy, legacy_s = cold("legacy")
    best_first, best_first_s = cold("best_first")

    for chosen, reference in zip(best_first.layers, legacy.layers):
        assert chosen.best.dataflow == reference.best.dataflow, (
            chosen.layer.name
        )
        assert chosen.score == reference.score, chosen.layer.name
    evaluated_best_first = sum(r.evaluated for r in best_first.layers)
    evaluated_legacy = sum(r.evaluated for r in legacy.layers)
    # Bound-quality telemetry: how often the first-visited block (the
    # lower bound's top pick under best-first) held the eventual winner.
    first_block_wins = sum(
        1 for r in best_first.layers if r.first_block_won
    )
    record_bench(
        search_order_legacy_candidates=evaluated_legacy,
        search_order_best_first_candidates=evaluated_best_first,
        search_order_candidates_saved=evaluated_legacy - evaluated_best_first,
        search_order_legacy_s=round(legacy_s, 3),
        search_order_best_first_s=round(best_first_s, 3),
        search_order_first_block_wins=first_block_wins,
        search_order_layers=len(best_first.layers),
    )
    assert evaluated_best_first < evaluated_legacy, (
        f"best-first evaluated {evaluated_best_first}, "
        f"legacy {evaluated_legacy}"
    )


def test_bench_session_sweep(record_bench, tmp_path):
    """The session front door end to end: scoped sweep + merged stats.

    Runs a small sweep through :meth:`repro.api.Session.sweep` with a
    persistent local store, closes the session (flushing the
    cross-process statistics sidecar), then re-opens a second session on
    the same store and confirms the recall path; wall time and the merged
    hit counters land in ``BENCH_core_models.json``.
    """
    from repro.api import Session, SessionConfig

    config = SessionConfig(
        cache_dir=tmp_path / "session-cache", parallelism=1
    )
    options = OptimizerOptions.fast(
        max_l2_candidates=4, keep_per_level=2, keep_allocations=1,
        max_parallelism_candidates=1,
    )
    clear_cache()
    start = time.perf_counter()
    with Session(config) as session:
        cold = session.sweep(["alexnet"], options=options)
    cold_s = time.perf_counter() - start
    clear_cache()  # drop the in-process memos; the store survives
    start = time.perf_counter()
    with Session(config) as session:
        warm = session.sweep(["alexnet"], options=options)
    warm_s = time.perf_counter() - start
    for before, after in zip(cold.results, warm.results):
        assert before.total_energy_pj == after.total_energy_pj
    from repro.optimizer.config_store import LocalDirectoryStore

    merged = warm.cache_statistics[
        LocalDirectoryStore(tmp_path / "session-cache").identity()
    ]
    assert merged.hits >= warm.entries[0].stats.disk_hits > 0
    record_bench(
        session_sweep_cold_s=round(cold_s, 3),
        session_sweep_warm_s=round(warm_s, 3),
        session_sweep_merged_hits=merged.hits,
        session_sweep_merged_writes=merged.writes,
    )


def test_bench_cache_backend_stats(record_bench, tmp_path):
    """Save-and-recall statistics per config-store backend.

    One cold search followed by one recall through each backend; the
    per-backend hit/miss/re-eval counters land in
    ``BENCH_core_models.json`` so cache efficacy is tracked across PRs.
    """
    from repro.optimizer.engine import (
        cache_statistics,
        optimize_layer,
        reset_cache_statistics,
    )

    from repro.optimizer.config_store import clear_memory_stores, create_store

    layer = ConvLayer(
        "cachestat", h=14, w=14, c=32, f=4, k=48, r=3, s=3, t=3,
        pad_h=1, pad_w=1, pad_f=1,
    )
    arch = morph()
    options = OptimizerOptions.fast()
    reset_cache_statistics()
    clear_memory_stores()  # the "memory" backend is shared process-wide
    metrics = {}
    for backend in ("local", "sharded", "memory"):
        cache_dir = tmp_path / backend
        for _ in range(2):  # cold (miss + write), then recall (hit)
            clear_cache()
            optimize_layer(
                layer, arch, options,
                cache_dir=cache_dir, cache_backend=backend, parallelism=1,
            )
        stats = cache_statistics()[
            create_store(backend, cache_dir).identity()
        ]
        assert stats.hits == 1 and stats.misses == 1, (backend, stats)
        assert stats.recall_reevals == 1 and stats.writes == 1, (backend, stats)
        metrics.update({
            f"cache_{backend}_hits": stats.hits,
            f"cache_{backend}_misses": stats.misses,
            f"cache_{backend}_recall_reevals": stats.recall_reevals,
        })
    record_bench(**metrics)
    reset_cache_statistics()


@pytest.mark.slow
def test_bench_network_sweep_serial_cold(benchmark, record_bench):
    """Full C3D sweep with every cache disabled: the engine's baseline.

    Compare against ``test_bench_network_sweep_warm_cache`` for the
    save-and-recall speedup the paper's Section V describes (target >=3x;
    in practice orders of magnitude).
    """
    network = c3d()
    result = benchmark.pedantic(
        optimize_network,
        args=(network.layers, morph(), OptimizerOptions.fast()),
        # parallelism pinned so $REPRO_PARALLELISM (set in CI) cannot turn
        # the serial baseline into a parallel run.
        kwargs=dict(network_name=network.name, use_cache=False, parallelism=1),
        rounds=1,
        iterations=1,
    )
    assert result.total_energy_pj > 0
    record_bench(
        serial_cold_candidates=sum(r.considered for r in result.layers),
        serial_cold_objective_pj=result.total_energy_pj,
    )


@pytest.mark.slow
def test_bench_network_sweep_warm_cache(benchmark, tmp_path_factory):
    """C3D sweep recalled from the persistent configuration cache.

    The setup run populates the disk cache; each timed round drops the
    in-process memo, so what is measured is disk recall + re-evaluation
    of every layer (one model evaluation each, no search).
    """
    cache_dir = tmp_path_factory.mktemp("repro-config-cache")
    network = c3d()
    options = OptimizerOptions.fast()
    cold = optimize_network(
        network.layers, morph(), options,
        network_name=network.name, cache_dir=cache_dir,
    )

    def warm():
        clear_cache()
        return optimize_network(
            network.layers, morph(), options,
            network_name=network.name, cache_dir=cache_dir,
        )

    result = benchmark(warm)
    assert result.total_energy_pj == cold.total_energy_pj


@pytest.mark.slow
def test_bench_network_sweep_dedup_i3d(benchmark):
    """I3D sweep, in-memory caches only: measures layer deduplication.

    I3D repeats Inception block shapes heavily, so the engine searches
    far fewer unique layers than the network lists.
    """
    network = i3d()
    clear_cache()
    result = benchmark.pedantic(
        optimize_network,
        args=(network.layers, morph(), OptimizerOptions.fast()),
        # parallelism pinned: this measures dedup alone, not dedup+workers.
        kwargs=dict(network_name=network.name, parallelism=1),
        rounds=1,
        iterations=1,
    )
    assert result.total_energy_pj > 0


def test_bench_trace_simulator(benchmark):
    """The validation walker on a small layer (exponentially slower than
    the analytic model it checks — that gap is the point)."""
    layer = ConvLayer("small", h=12, w=12, c=8, f=6, k=8, r=3, s=3, t=3)
    hierarchy = TileHierarchy(
        layer,
        (
            TileShape(w=5, h=10, c=4, k=4, f=2),
            TileShape(w=5, h=5, c=2, k=2, f=2),
        ),
    )
    dataflow = Dataflow(
        LoopOrder.parse("WHCKF"), LoopOrder.parse("CFWHK"), hierarchy
    )
    report = benchmark(trace_dataflow, dataflow)
    assert report.boundaries[0].fills
