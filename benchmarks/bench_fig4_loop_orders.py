"""Benchmark: regenerate Figure 4 (loop-order motivation study, all of C3D).

Covers Figures 4a (outer orders / DRAM energy), 4b (L2 allocation) and 4c
(inner orders / on-chip energy) in one run, as they share the Opt sweep.
"""

import pytest

from repro.experiments.fig4_loop_orders import run_figure4

#: Full-network sweep: deselected in the fast CI tier (-m "not slow").
pytestmark = pytest.mark.slow


def test_bench_figure4(once, record_bench):
    result = once(run_figure4, fast=True)
    record_bench(
        layers=len(result.layer_names),
        opt_dram_energy_pj=sum(result.dram_energy["Opt"]),
        opt_onchip_energy_pj=sum(result.onchip_energy["Opt"]),
    )
    assert len(result.layer_names) == 8  # all C3D layers
    # Figure 4a/4c: per-layer Opt is never beaten by a fixed order.
    assert result.opt_never_worse("dram")
    assert result.opt_never_worse("onchip")
    # Figure 4a: the extreme orders pay somewhere.
    worst_k = max(
        k / o
        for k, o in zip(result.dram_energy["KWHCF"], result.dram_energy["Opt"])
    )
    worst_i = max(
        i / o
        for i, o in zip(result.dram_energy["WFHCK"], result.dram_energy["Opt"])
    )
    assert worst_k > 1.05 and worst_i > 1.05
    # Figure 4b: allocation shifts from inputs (early) to weights (late).
    assert result.l2_allocation[0][0] > result.l2_allocation[0][2]
    assert result.l2_allocation[-1][2] > result.l2_allocation[-1][0]
