"""Benchmark: regenerate Figure 5 (buffer-hierarchy-depth sweep)."""

from repro.experiments.fig5_hierarchy import run_figure5


def test_bench_figure5(once, record_bench):
    result = once(run_figure5, max_levels=4)
    record_bench(
        best_depth_3d=result.best_depth(is_3d=True),
        advantage_3d=max(result.advantage(is_3d=True)),
        advantage_2d=max(result.advantage(is_3d=False)),
    )
    adv3 = result.advantage(is_3d=True)
    adv2 = result.advantage(is_3d=False)
    # Multi-level on-chip hierarchies pay off, more for 3D than 2D, and
    # returns diminish past three levels.
    assert max(adv3) > 1.0
    assert max(adv3) > max(adv2)
    assert result.best_depth(is_3d=True) in (2, 3)
    assert adv3[3] <= adv3[2] * 1.01
