"""Benchmark: serving throughput and coalesce rate on a mixed traffic.

Eight concurrent clients (half requesting two_stream, half c3d — the
paper-adjacent speed/accuracy traffic mix) drive one
:class:`~repro.serve.ServeEngine` twice: once with in-flight request
coalescing enabled and once with it disabled.  Caching is off in both
arms, so the only sharing mechanism under test is the signature-keyed
in-flight table — the measured ratio is coalescing's contribution
alone, not the memo's.

Gate: coalescing performs **at least 1.5x fewer engine searches** than
the uncoalesced run at concurrency 8.  Results are asserted identical
between the arms (coalescing is pure concurrent dedup).  Nightly CI
uploads the resulting ``BENCH_serve.json`` so the coalesce-rate and
throughput trajectory is tracked across PRs.
"""

import asyncio
import time

import pytest

from repro.api import Session
from repro.arch.accelerator import morph
from repro.optimizer.search import OptimizerOptions, clear_cache
from repro.serve import ServeRequest
from repro.workloads.networks import build_network

#: Full-network concurrent sweeps: deselected in the fast CI tier.
pytestmark = pytest.mark.slow

CONCURRENCY = 8
NETWORKS = ("two_stream", "c3d")


def _drive(coalesce: bool) -> dict:
    """One serving run of the mixed traffic; returns results + counters."""
    clear_cache()
    session = Session(use_cache=False)
    arch = morph()
    networks = [build_network(name) for name in NETWORKS]
    options = OptimizerOptions.fast()

    async def run():
        serve = session.serve(max_workers=CONCURRENCY, coalesce=coalesce)
        requests = [
            ServeRequest(
                network=networks[i % len(networks)],
                tenant=f"tenant-{i}",
                arch=arch,
                options=options,
            )
            for i in range(CONCURRENCY)
        ]
        start = time.perf_counter()
        results = await asyncio.gather(
            *[serve.submit(request) for request in requests]
        )
        wall_s = time.perf_counter() - start
        metrics = serve.metrics()
        await serve.aclose()
        return results, metrics, wall_s

    results, metrics, wall_s = asyncio.run(run())
    session.close()
    clear_cache()
    return {
        "results": [served.result for served in results],
        "searched": metrics.engine.searched,
        "coalesced": metrics.engine.coalesced,
        "coalesce_rate": metrics.coalesce_rate,
        "wall_s": round(wall_s, 4),
        "throughput_rps": round(CONCURRENCY / wall_s, 4),
        "latency_p95_ms": metrics.latency_p95_ms,
    }


def test_bench_serve_coalescing_gate(once, record_bench):
    def both_arms():
        return _drive(coalesce=True), _drive(coalesce=False)

    coalesced, uncoalesced = once(both_arms)
    record_bench(
        concurrency=CONCURRENCY,
        networks=list(NETWORKS),
        searched_coalesced=coalesced["searched"],
        searched_uncoalesced=uncoalesced["searched"],
        search_ratio=round(
            uncoalesced["searched"] / max(1, coalesced["searched"]), 4
        ),
        coalesce_rate=round(coalesced["coalesce_rate"], 4),
        coalesced_events=coalesced["coalesced"],
        wall_s_coalesced=coalesced["wall_s"],
        wall_s_uncoalesced=uncoalesced["wall_s"],
        throughput_rps_coalesced=coalesced["throughput_rps"],
        throughput_rps_uncoalesced=uncoalesced["throughput_rps"],
        latency_p95_ms_coalesced=coalesced["latency_p95_ms"],
        latency_p95_ms_uncoalesced=uncoalesced["latency_p95_ms"],
    )
    # Coalescing never changes an answer — only how often it is computed.
    assert coalesced["results"] == uncoalesced["results"]
    # Uncoalesced: every client searches every layer itself.
    layer_total = sum(
        len(build_network(name).layers) for name in NETWORKS
    ) * (CONCURRENCY // len(NETWORKS))
    assert uncoalesced["searched"] == layer_total
    assert uncoalesced["coalesced"] == 0
    # The gate: >= 1.5x fewer engine searches with coalescing on.
    assert uncoalesced["searched"] >= 1.5 * coalesced["searched"], (
        f"coalescing saved too little: {coalesced['searched']} vs "
        f"{uncoalesced['searched']} searches"
    )
    assert coalesced["coalesced"] > 0
