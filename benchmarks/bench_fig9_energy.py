"""Benchmark: regenerate Figure 9 (energy on all five CNNs, 3 machines).

This is the paper's headline experiment: Eyeriss vs Morph-base vs Morph on
C3D, 3D ResNet-50, I3D, Two-Stream and AlexNet, with the DRAM/L2/L1/L0/
compute split.  The run optimises every layer of every network on every
machine (the most expensive benchmark in the suite).
"""

import pytest

from repro.experiments.fig9_energy import run_figure9

#: Full-network sweep: deselected in the fast CI tier (-m "not slow").
pytestmark = pytest.mark.slow


def test_bench_figure9(once, record_bench):
    result = once(run_figure9, fast=True)
    assert len(result.networks) == 5
    record_bench(
        networks=len(result.networks),
        avg_reduction_morph_vs_base_3d=result.average_reduction_3d(
            "Morph", "Morph_base"
        ),
        avg_reduction_morph_vs_eyeriss_3d=result.average_reduction_3d(
            "Morph", "Eyeriss"
        ),
        morph_total_energy_pj=sum(e.total("Morph") for e in result.networks),
    )

    # Morph beats Morph-base on every network.
    for entry in result.networks:
        assert entry.total("Morph") < entry.total("Morph_base"), entry.network

    # Both Morph variants beat Eyeriss heavily on the 3D CNNs.
    for name in ("C3D", "ResNet3D-50", "I3D"):
        entry = result.by_name(name)
        assert entry.reduction_vs("Morph", "Eyeriss") > 2.0, name
        assert entry.reduction_vs("Morph_base", "Eyeriss") > 1.2, name

    # The temporal-reuse gap widens with frame count (I3D: 64f vs C3D: 16f).
    assert result.by_name("I3D").reduction_vs("Morph", "Eyeriss") > (
        result.by_name("C3D").reduction_vs("Morph", "Eyeriss") * 0.9
    )

    # The 2D crossover: Eyeriss beats Morph-base on AlexNet, Morph still
    # edges Eyeriss (Section VI-D).
    alex = result.by_name("AlexNet")
    assert alex.total("Eyeriss") < alex.total("Morph_base")
    assert alex.total("Morph") < alex.total("Eyeriss")

    # Headline factors in the right regime (paper: 2.5x and 15.9x).
    assert result.average_reduction_3d("Morph", "Morph_base") > 1.5
    assert result.average_reduction_3d("Morph", "Eyeriss") > 2.5
