"""Benchmarks of the validation simulators: columnar pass vs scalar walk.

``test_bench_trace_columnar_vs_scalar`` is the columnar simulation
engine's acceptance gate: on the C3D reference conv layer the columnar
trace pass must be >= 20x faster than the scalar residency walk while
producing bit-identical per-level fill/writeback/slide counters.  The
measured ratio (and the pipeline simulator's) lands in
``BENCH_trace_sim.json`` so the nightly job tracks the trajectory.
"""

import time

from repro.arch.accelerator import morph
from repro.core.dataflow import Dataflow, Parallelism
from repro.core.dims import ALL_DATA_TYPES
from repro.core.layer import ConvLayer
from repro.core.loopnest import LoopOrder
from repro.core.tiling import TileHierarchy, TileShape
from repro.sim.pipeline_sim import simulate_pipeline
from repro.sim.trace import trace_dataflow

#: C3D conv2 (Tran et al. shapes, the paper's Table III workload): the
#: reference layer for the trace-simulator gate.
LAYER = ConvLayer(
    "c3d2", h=56, w=56, c=64, f=16, k=128, r=3, s=3, t=3,
    pad_h=1, pad_w=1, pad_f=1,
)
HIERARCHY = TileHierarchy(
    LAYER,
    (
        TileShape(w=28, h=14, c=64, k=8, f=8),
        TileShape(w=14, h=7, c=32, k=8, f=4),
        TileShape(w=7, h=7, c=8, k=8, f=2),
    ),
)
DATAFLOW = Dataflow(
    LoopOrder.parse("WHCKF"),
    LoopOrder.parse("CFWHK"),
    HIERARCHY,
    Parallelism(h=2, w=2, k=24),
)


def _assert_identical_reports(a, b) -> None:
    for i, (ba, bb) in enumerate(zip(a.boundaries, b.boundaries)):
        for dt in ALL_DATA_TYPES:
            assert ba.fills[dt] == bb.fills[dt], (i, dt)
            assert ba.fill_bytes[dt] == bb.fill_bytes[dt], (i, dt)
        assert ba.psum_load_bytes == bb.psum_load_bytes, i
        assert ba.psum_writeback_bytes == bb.psum_writeback_bytes, i
    assert a.dram_psum_writeback_bytes() == b.dram_psum_writeback_bytes()


def test_bench_trace_columnar_vs_scalar(benchmark, record_bench):
    """Full-schedule residency trace: columnar pass vs scalar walk.

    Same simulator (shared kernels), bit-identical counters — the only
    variable is walking tiles one by one versus array passes over the
    schedule's coordinate tables.  Gate: >= 20x.
    """
    start = time.perf_counter()
    scalar = trace_dataflow(DATAFLOW, vectorize=False)
    scalar_s = time.perf_counter() - start

    columnar = benchmark.pedantic(
        trace_dataflow, args=(DATAFLOW,), kwargs=dict(vectorize=True),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    columnar_s = benchmark.stats.stats.min

    _assert_identical_reports(scalar, columnar)
    speedup = scalar_s / columnar_s
    record_bench(
        trace_scalar_s=round(scalar_s, 4),
        trace_columnar_s=round(columnar_s, 4),
        trace_speedup=round(speedup, 1),
        trace_dram_fill_bytes={
            dt.value: scalar.boundaries[0].fill_bytes[dt]
            for dt in ALL_DATA_TYPES
        },
    )
    assert speedup >= 20.0, f"columnar trace only {speedup:.1f}x faster"


def test_bench_pipeline_columnar_vs_scalar(benchmark, record_bench):
    """Double-buffered pipeline timing: columnar pass vs scalar walk."""
    arch = morph()
    start = time.perf_counter()
    scalar = simulate_pipeline(DATAFLOW, arch, vectorize=False)
    scalar_s = time.perf_counter() - start

    columnar = benchmark.pedantic(
        simulate_pipeline, args=(DATAFLOW, arch),
        kwargs=dict(vectorize=True), rounds=3, iterations=1, warmup_rounds=1,
    )
    columnar_s = benchmark.stats.stats.min

    assert columnar == scalar  # every field, cycles included, bit-identical
    record_bench(
        pipeline_scalar_s=round(scalar_s, 5),
        pipeline_columnar_s=round(columnar_s, 5),
        pipeline_speedup=round(scalar_s / columnar_s, 1),
        pipeline_tiles=columnar.tiles,
        pipeline_cycles=columnar.cycles,
    )
