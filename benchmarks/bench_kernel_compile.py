"""Compiled kernel backend vs plain NumPy columnar evaluation.

The acceptance gate of the ``repro.core.backend`` compiled backend: a
cold sweep (cache off, serial, vectorized) over C3D plus the dilated C3D
variant must run at least 2x faster through the ``"compiled"`` backend
than through ``"numpy"`` **when a JIT (numba) is installed**, with
bit-identical chosen configurations and scores.  Without a JIT the
compiled backend silently resolves to the numpy fallback — the sweep
still runs (that is the contract: never an import error), the identity
assertions still apply, and the recorded timings document fallback mode
(``kernel_compile_jit_available: false``) instead of gating on speedup.

Timings land in ``BENCH_kernel_compile.json`` (uploaded nightly in CI):
``kernel_compile_fused_s`` / ``kernel_compile_numpy_s`` /
``kernel_compile_rounds`` / ``kernel_compile_speedup``.
"""

import time

from repro.arch.accelerator import morph
from repro.core.backend import compiled_available
from repro.optimizer.search import (
    OptimizerOptions,
    clear_cache,
    optimize_network,
)
from repro.workloads.networks import build_network

#: Cold sweep rounds per backend: the first compiled round pays the JIT
#: compilation, later rounds measure the steady state the optimizer
#: actually runs in (one process evaluates thousands of candidate
#: blocks); the per-backend timing is the best round, standard
#: benchmarking practice for JIT'd code.
ROUNDS = 3


def _cold_sweep(networks, backend: str):
    """One fully cold sweep (no caches, serial) through ``backend``."""
    results = []
    for network in networks:
        clear_cache()
        results.append(
            optimize_network(
                network.layers,
                morph(),
                OptimizerOptions.fast(),
                network_name=network.name,
                use_cache=False,
                parallelism=1,
                vectorize=True,
                kernel_backend=backend,
            )
        )
    return results


def test_bench_fused_vs_numpy_cold_sweep(record_bench):
    """Cold C3D + dilated-C3D sweep: compiled backend vs numpy backend.

    Identical chosen configurations and scores are asserted
    unconditionally (the scalar path stays the oracle; the backends may
    only lower).  The >= 2x speed gate applies only when a JIT is
    actually installed; otherwise the run documents fallback mode.
    """
    networks = [build_network("c3d"), build_network("c3d_dilated")]

    numpy_s = float("inf")
    fused_s = float("inf")
    numpy_results = fused_results = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        numpy_results = _cold_sweep(networks, "numpy")
        numpy_s = min(numpy_s, time.perf_counter() - start)
        start = time.perf_counter()
        fused_results = _cold_sweep(networks, "compiled")
        fused_s = min(fused_s, time.perf_counter() - start)

    for numpy_net, fused_net in zip(numpy_results, fused_results):
        assert numpy_net.total_energy_pj == fused_net.total_energy_pj
        for a, b in zip(numpy_net.layers, fused_net.layers):
            assert a.best.dataflow == b.best.dataflow, a.layer.name
            assert a.score == b.score, a.layer.name

    speedup = numpy_s / fused_s
    jit = compiled_available()
    record_bench(
        kernel_compile_fused_s=round(fused_s, 3),
        kernel_compile_numpy_s=round(numpy_s, 3),
        kernel_compile_rounds=ROUNDS,
        kernel_compile_speedup=round(speedup, 2),
        kernel_compile_jit_available=jit,
        kernel_compile_networks=[n.name for n in networks],
        kernel_compile_objective_pj=sum(
            r.total_energy_pj for r in fused_results
        ),
    )
    if jit:
        assert speedup >= 2.0, (
            f"compiled backend only {speedup:.2f}x faster than numpy "
            f"columnar ({fused_s:.3f}s vs {numpy_s:.3f}s)"
        )
