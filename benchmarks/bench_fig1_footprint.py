"""Benchmark: regenerate Figure 1 (footprints and reuse, 2D vs 3D CNNs)."""

from repro.experiments.fig1_footprint import FIG1_BUILDS, run_figure1


def test_bench_figure1(once, record_bench):
    result = once(run_figure1)
    # Every network profiled, with the paper's observations holding.
    assert {fp.network for fp in result.footprints} == set(FIG1_BUILDS)
    assert result.max_footprint("C3D") > 1024 * 1024  # Observation 1
    assert result.reuse_ratio_3d_over_2d() > 2.0  # Observation 3
    assert result.reuse["I3D"] > result.reuse["AlexNet"]
    record_bench(
        networks=len(result.footprints),
        c3d_max_footprint_bytes=result.max_footprint("C3D"),
        reuse_ratio_3d_over_2d=result.reuse_ratio_3d_over_2d(),
    )
