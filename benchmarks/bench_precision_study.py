"""Benchmark: precision-sensitivity extension study on C3D."""

import pytest

from repro.experiments.precision_study import run_precision_study

#: Full-network sweep: deselected in the fast CI tier (-m "not slow").
pytestmark = pytest.mark.slow


def test_bench_precision_study(once, record_bench):
    result = once(run_precision_study, fast=True)
    record_bench(
        int8_energy_pj=result.energy("int8"),
        int16_over_int8_scaling=result.scaling_int16_over_int8(),
    )
    assert result.energy("int4") <= result.energy("int8")
    assert result.scaling_int16_over_int8() > 1.2
