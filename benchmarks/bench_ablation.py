"""Benchmark: flexibility ablation (DESIGN.md's design-choice study)."""

import pytest

from repro.experiments.ablation_flexibility import run_ablation

#: Full-network sweep: deselected in the fast CI tier (-m "not slow").
pytestmark = pytest.mark.slow


def test_bench_ablation(once, record_bench):
    result = once(run_ablation, fast=True)
    record_bench(morph_gain_over_base=result.gain_over_base("morph"))
    # Each mechanism alone helps (or at worst does no harm)...
    for name in ("+orders", "+partitions", "+parallelism"):
        assert result.gain_over_base(name) >= 0.999, name
    # ...and the full machine composes them.
    assert result.mechanisms_compose()
    assert result.gain_over_base("morph") > 1.3
