"""Benchmark: regenerate Figure 10 (perf/watt, Morph vs Morph-base)."""

import pytest

from repro.experiments.fig10_perf_watt import run_figure10

#: Full-network sweep: deselected in the fast CI tier (-m "not slow").
pytestmark = pytest.mark.slow


def test_bench_figure10(once, record_bench):
    result = once(run_figure10, fast=True)
    assert len(result.entries) == 5
    record_bench(
        networks=len(result.entries),
        average_perf_per_watt_improvement=result.average_improvement,
    )
    # Morph improves performance-per-watt on every network (paper: 2.07x
    # to 5.08x, average ~4x).
    for entry in result.entries:
        assert entry.improvement > 1.0, entry.network
    assert result.average_improvement > 1.3
    # On the 3D CNNs the win comes with better PE utilisation.
    for entry in result.entries:
        if entry.is_3d:
            assert entry.morph_utilization > entry.base_utilization
