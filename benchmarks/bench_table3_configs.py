"""Benchmark: regenerate Table III (per-layer C3D configurations)."""

import pytest

from repro.experiments.table3_configs import run_table3

#: Full-network sweep: deselected in the fast CI tier (-m "not slow").
pytestmark = pytest.mark.slow


def test_bench_table3(once, record_bench):
    result = once(run_table3, fast=True)
    record_bench(
        layers=len(result.rows),
        distinct_outer_orders=len({row.outer_order for row in result.rows}),
    )
    assert [row.layer for row in result.rows] == [
        "layer1", "layer2", "layer3a", "layer3b",
        "layer4a", "layer4b", "layer5a", "layer5b",
    ]
    # The table's character: loop orders and tile parameters vary across
    # layers (the whole point of flexibility).
    assert len({row.outer_order for row in result.rows}) > 1
    assert len({(row.kt, row.ht, row.ft) for row in result.rows}) > 3
    # Input-space tile bounds follow the layer shapes (paper: Ht=114 max
    # for layer1, Ft tracks the pooled frame counts).
    by_layer = {row.layer: row for row in result.rows}
    assert by_layer["layer1"].ht <= 114
    assert by_layer["layer1"].ft <= 18
    assert by_layer["layer5b"].ft <= 4
    # Kp*Vw comes in vector-width multiples (paper lists 8 and 16).
    assert all(row.kp_vw % 8 == 0 for row in result.rows)
