"""Benchmark: anytime-search gap-vs-budget curve on C3D.

Sweeps ``budget_ms`` over the full C3D per-layer search and records, for
each budget, the aggregate best-so-far score, the summed ``bound_gap``
(how far the anytime answer can sit above the true optimum), and how many
layers exhausted their budget.  The curve should be monotone: more budget
never worsens the score, and an unexhausted budget reproduces the
unbudgeted optimum bit-for-bit (the anytime contract in
docs/INVARIANTS.md).  Nightly CI uploads the resulting
``BENCH_anytime.json`` so the gap trajectory is tracked across PRs.
"""

import pytest

from repro.optimizer.engine import OptimizerEngine
from repro.optimizer.search import OptimizerOptions, clear_cache
from repro.workloads.networks import build_network

#: Full-network sweep: deselected in the fast CI tier (-m "not slow").
pytestmark = pytest.mark.slow

#: None = unbudgeted reference; 0.0 = first-feasible-block floor.
BUDGETS_MS = (0.0, 1.0, 5.0, 25.0, None)


def _sweep(arch, layers):
    """One optimize_network pass per budget, caches cleared between."""
    points = []
    for budget in BUDGETS_MS:
        clear_cache()
        engine = OptimizerEngine(
            arch,
            OptimizerOptions.fast(),
            use_cache=False,
            budget_ms=budget,
        )
        network = engine.optimize_network(layers, network_name="c3d")
        points.append(
            {
                "budget_ms": budget,
                "score": sum(r.score for r in network.layers),
                "bound_gap": sum(r.bound_gap or 0.0 for r in network.layers),
                "exhausted_layers": sum(
                    r.budget_exhausted for r in network.layers
                ),
                "evaluated": sum(r.evaluated for r in network.layers),
            }
        )
    clear_cache()
    return points


def test_bench_anytime_gap_curve(once, record_bench):
    from repro.arch.accelerator import morph

    layers = build_network("c3d").layers
    points = once(_sweep, morph(), layers)
    record_bench(
        budgets_ms=list(BUDGETS_MS),
        curve=points,
        layers=len(layers),
    )
    reference = points[-1]
    assert reference["budget_ms"] is None
    assert reference["exhausted_layers"] == 0
    # Every budgeted point's certified window contains the reference
    # optimum (gap validity holds regardless of wall-clock jitter; the
    # per-budget block counts themselves are timing-dependent, so the
    # shape of the curve is recorded rather than asserted).
    for point in points[:-1]:
        assert point["bound_gap"] >= 0.0
        assert (
            point["score"] - point["bound_gap"]
            <= reference["score"] * (1 + 1e-9)
        )
    # The zero budget genuinely truncates the search on this network.
    assert points[0]["exhausted_layers"] > 0
    assert points[0]["evaluated"] < reference["evaluated"]
