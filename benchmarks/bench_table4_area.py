"""Benchmark: regenerate Table IV (PE area breakdown, cost of flexibility)."""

import pytest

from repro.experiments.table4_area import PAPER_TABLE4, run_table4


def test_bench_table4(once, record_bench):
    result = once(run_table4)
    record_bench(total_flexibility_area_overhead=result.overheads["total"])
    # Every component lands near the paper's synthesis numbers.
    for name, (p_base, p_flex, _) in PAPER_TABLE4.items():
        base, flex, _ = result.component(name)
        assert base == pytest.approx(p_base, rel=0.15), name
        assert flex == pytest.approx(p_flex, rel=0.15), name
    # The headline: flexibility costs ~5% total PE area.
    assert result.overheads["total"] == pytest.approx(0.0498, abs=0.015)
