"""Benchmark configuration and machine-readable result emission.

Each paper figure/table gets one benchmark that regenerates it end to end.
The experiment computations are deterministic and expensive (minutes for
the full network sweeps), so table/figure benchmarks run a single round;
micro-benchmarks of the core models use normal multi-round timing.

In-process optimizer caches persist across benchmarks, mirroring the
paper's note that the analysis runs once per CNN with configurations
recalled afterwards.

Every ``bench_<name>.py`` module additionally emits a ``BENCH_<name>.json``
record — per-test wall times plus whatever metrics the benchmark registers
through the ``record_bench`` fixture (candidate counts, objective values,
speedups) — so the performance trajectory is tracked across PRs.  Records
land in ``$REPRO_BENCH_DIR`` (default: the current working directory); CI
uploads them as artifacts.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

#: bench name -> {"tests": {...}, "metrics": {...}}
_RECORDS: dict[str, dict] = {}


def _bench_name(item) -> str | None:
    stem = Path(item.fspath).stem
    if stem.startswith("bench_"):
        return stem[len("bench_"):]
    return None


def _record_for(name: str) -> dict:
    return _RECORDS.setdefault(name, {"tests": {}, "metrics": {}})


@pytest.fixture
def once(benchmark):
    """Run an expensive experiment exactly once under the benchmark timer."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1,
            warmup_rounds=0,
        )

    return runner


@pytest.fixture
def record_bench(request):
    """Register metrics for this module's ``BENCH_<name>.json`` record.

    Usage: ``record_bench(candidates=1296, objective_energy_pj=1.2e9)``.
    Keys merge module-wide, so several tests can contribute.
    """
    name = _bench_name(request.node) or Path(request.node.fspath).stem

    def record(**fields) -> None:
        _record_for(name)["metrics"].update(fields)

    return record


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    name = _bench_name(item)
    start = time.perf_counter()
    yield
    if name is not None:
        _record_for(name)["tests"][item.name] = {
            "wall_s": round(time.perf_counter() - start, 4)
        }


def pytest_sessionfinish(session):
    # repro-lint: disable=scoped-config  # pytest plugin hook: runs after
    # every session closed, so there is no active Session to resolve
    # through; reads the same variable SessionConfig.from_env maps.
    out_dir = Path(os.environ.get("REPRO_BENCH_DIR") or ".")
    for name, record in _RECORDS.items():
        payload = {
            "benchmark": name,
            "schema_version": 1,
            "total_wall_s": round(
                sum(t["wall_s"] for t in record["tests"].values()), 4
            ),
            "tests": record["tests"],
            "metrics": record["metrics"],
        }
        try:
            out_dir.mkdir(parents=True, exist_ok=True)
            path = out_dir / f"BENCH_{name}.json"
            path.write_text(json.dumps(payload, indent=2, sort_keys=True))
        except OSError:  # emission is best-effort, never fails a run
            pass
