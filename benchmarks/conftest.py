"""Benchmark configuration.

Each paper figure/table gets one benchmark that regenerates it end to end.
The experiment computations are deterministic and expensive (minutes for
the full network sweeps), so table/figure benchmarks run a single round;
micro-benchmarks of the core models use normal multi-round timing.

In-process optimizer caches persist across benchmarks, mirroring the
paper's note that the analysis runs once per CNN with configurations
recalled afterwards.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run an expensive experiment exactly once under the benchmark timer."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1,
            warmup_rounds=0,
        )

    return runner
