"""Legacy setuptools shim.

The execution environment has no network and no ``wheel`` package, so PEP 517
editable installs fail; ``pip install -e . --no-use-pep517`` with this shim
works everywhere.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
