"""Edge video understanding: full C3D clip inference on Morph vs Morph-base.

The paper's motivating scenario (Section I): real-time video understanding
on energy-constrained edge devices — surveillance drones, self-driving
cars.  This example evaluates a complete 16-frame C3D clip on both
machines, reporting per-layer energy, end-to-end clips/second and
energy per clip, plus how the optimizer reshapes the dataflow layer by
layer (the paper's Table III in action).

Run:  python examples/video_pipeline.py
"""

from repro import OptimizerOptions, Session, morph
from repro.baselines.morph_base import evaluate_network_on_morph_base


def main() -> None:
    options = OptimizerOptions.fast()

    with Session() as session:
        network = session.build_network("c3d")
        print(f"Workload: {network.name}, {len(network)} conv layers, "
              f"{network.total_maccs / 1e9:.1f} GMACs per 16-frame clip\n")

        flexible = session.optimize_network(
            network, morph(), options
        )
        with session.activate():
            baseline = evaluate_network_on_morph_base(network, options)

    header = (
        f"{'layer':9s} {'Morph uJ':>10s} {'base uJ':>10s} {'saving':>7s}  "
        f"{'outer':9s} {'inner':9s} {'parallelism':18s}"
    )
    print(header)
    print("-" * len(header))
    for flex_layer, base_layer in zip(flexible.layers, baseline.layers):
        ev = flex_layer.best
        print(
            f"{ev.layer.name:9s} "
            f"{ev.total_energy_pj / 1e6:10.1f} "
            f"{base_layer.best.total_energy_pj / 1e6:10.1f} "
            f"{base_layer.best.total_energy_pj / ev.total_energy_pj:6.2f}x  "
            f"{ev.dataflow.outer_order.format():9s} "
            f"{ev.dataflow.inner_order.format(lower=True):9s} "
            f"{ev.dataflow.parallelism.describe():18s}"
        )

    clock = morph().technology.clock_hz
    for name, result in (("Morph", flexible), ("Morph_base", baseline)):
        seconds = result.total_cycles / clock
        energy_mj = result.total_energy_pj / 1e9
        print(
            f"\n{name}: {1.0 / seconds:6.1f} clips/s, "
            f"{energy_mj:.2f} mJ per clip, "
            f"{result.perf_per_watt / 1e9:.0f} GMACs/J"
        )

    ratio = baseline.total_energy_pj / flexible.total_energy_pj
    print(f"\nFlexibility buys {ratio:.2f}x lower energy on this network "
          f"(paper: 2.5x average across 3D CNNs).")


if __name__ == "__main__":
    main()
