"""Bring your own 3D CNN: define, verify, and schedule a custom network.

Builds a compact gesture-recognition-style 3D CNN with the workload
builder, *functionally validates* the chosen schedules with the tiled
executor against the reference convolution (loop-order invariance,
Section II-E), and then maps every layer onto Morph through a
:class:`repro.Session` (the engine dedups/memoises every repeated shape).

Run:  python examples/custom_network.py
"""

import numpy as np

from repro import OptimizerOptions, Session, morph
from repro.sim.conv3d_ref import conv3d_reference, make_inputs, make_weights
from repro.sim.tiled_executor import execute_tiled
from repro.workloads.networks import ShapeTracker


def build_gesture_net():
    """A small 3D CNN over 32x32 clips of 8 frames (e.g. radar gestures)."""
    net = ShapeTracker(h=32, w=32, c=2, f=8)
    net.conv("stem", k=16, r=3, t=3)
    net.pool(size=2, size_f=1)
    net.conv("block1", k=32, r=3, t=3)
    net.conv("block2", k=32, r=3, t=3)
    net.pool(size=2, size_f=2)
    net.conv("head", k=64, r=3, t=3)
    return net.build("GestureNet", is_3d=True, input_frames=8)


def main() -> None:
    network = build_gesture_net()
    print(network.describe())
    print()

    arch = morph()
    session = Session()
    options = OptimizerOptions.fast()
    rng = np.random.default_rng(7)

    total_pj = 0.0
    total_cycles = 0.0
    for layer in network:
        result = session.optimize_layer(layer, arch, options)
        best = result.best
        total_pj += best.total_energy_pj
        total_cycles += best.cycles

        # Functional check: execute the *chosen* tiled schedule and compare
        # against the dense reference convolution, bit for bit.
        inputs = make_inputs(layer, rng)
        weights = make_weights(layer, rng)
        scheduled = execute_tiled(best.dataflow, inputs, weights)
        reference = conv3d_reference(layer, inputs, weights)
        assert np.array_equal(scheduled, reference), layer.name

        print(
            f"{layer.name:7s} {best.total_energy_pj / 1e3:9.1f} nJ  "
            f"{best.cycles / 1e3:8.1f} kcycles  "
            f"util {best.performance.utilization:5.0%}  "
            f"{best.dataflow.describe()}"
        )

    clock = arch.technology.clock_hz
    print(
        f"\nAll schedules bit-exact vs reference. Clip inference: "
        f"{total_pj / 1e6:.1f} uJ, {total_cycles / clock * 1e3:.2f} ms "
        f"-> {clock / total_cycles:.0f} clips/s on {arch.name}."
    )


if __name__ == "__main__":
    main()
