"""Architecture design-space exploration with the Morph cost models.

A downstream use of the library beyond reproducing the paper: size a Morph
variant for a target workload.  Sweeps the L2 capacity and the PE vector
width, re-optimising the dataflow for each machine (hardware/software
codesign, as the paper argues, must happen jointly), and reports the
energy/area Pareto candidates for I3D's heaviest layers.

The sweep runs through one :class:`repro.Session`: its
:class:`repro.SessionConfig` (materialised from the CLI flags, with
``$REPRO_*`` variables as the fallback layer) carries the parallelism and
the persistent cache, unique layer shapes are searched once per machine
variant, and each variant's chosen configurations persist under
``--cache-dir`` (default ``./.repro-cache``) so a rerun recalls every
configuration instead of re-searching (paper Section V).

Run:  python examples/design_space_exploration.py [--parallelism N]
      [--cache-dir DIR | --no-disk-cache]
"""

import argparse
import os

from repro import OptimizerOptions, Session, SessionConfig, i3d, morph
from repro.arch.sram import sram_area_mm2
from repro.arch.area import morph_pe_area


def machine_variants():
    """A small grid of Morph variants around the paper's design point."""
    for l2_kb in (512, 1024, 2048):
        for vector_width in (4, 8, 16):
            yield morph(l2_kb=l2_kb, vector_width=vector_width)


def chip_area_mm2(arch) -> float:
    """First-order die area: L2 macro + per-PE area (Table IV model)."""
    l2 = arch.levels[0]
    area = sram_area_mm2(l2.capacity_kb, banks=l2.banks)
    l1 = arch.levels[1]
    area += sram_area_mm2(l1.capacity_kb, banks=l1.banks) * l1.instances
    pe = morph_pe_area(l0_kb=arch.levels[2].capacity_kb, lanes=arch.vector_width)
    return area + pe.total * arch.total_pes


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--parallelism", type=int, default=os.cpu_count(),
        help="worker processes per variant sweep (default: all cores)",
    )
    parser.add_argument(
        "--cache-dir", default=".repro-cache",
        help="directory for the persistent configuration cache",
    )
    parser.add_argument(
        "--no-disk-cache", action="store_true",
        help="skip the on-disk cache (still dedups within the run)",
    )
    args = parser.parse_args()

    # The five most compute-heavy I3D layers stand in for the network: a
    # design sized for them is sized for the network's energy profile.
    network = i3d()
    heavy = tuple(
        sorted(network.layers, key=lambda l: l.maccs, reverse=True)[:5]
    )
    print(f"Workload: top-5 I3D layers, "
          f"{sum(l.maccs for l in heavy) / 1e9:.1f} GMACs\n")

    options = OptimizerOptions.fast()
    config = SessionConfig.resolve(
        parallelism=args.parallelism,
        cache_dir=None if args.no_disk_cache else args.cache_dir,
    )
    session = Session(config)
    rows = []
    stats = []
    # --no-disk-cache wins over the config/$REPRO_CACHE_DIR layer.
    knobs = {"cache_dir": False} if args.no_disk_cache else {}
    for arch in machine_variants():
        engine = session.engine(arch, options, **knobs)
        result = engine.optimize_network(
            heavy,
            network_name=f"i3d-top5@{arch.levels[0].capacity_kb:.0f}kB"
            f"/Vw{arch.vector_width}",
        )
        rows.append((arch, result, chip_area_mm2(arch)))
        stats.append(engine.stats)
    session.close()  # fold cache statistics into the store's sidecar

    print(f"{'L2 kB':>6s} {'Vw':>3s} {'energy mJ':>10s} {'Mcycles':>9s} "
          f"{'area mm^2':>10s} {'GMACs/J':>9s}")
    best_energy = min(r.total_energy_pj for _, r, _ in rows)
    for arch, result, area in rows:
        marker = "  <- paper design point" if (
            arch.levels[0].capacity_kb == 1024 and arch.vector_width == 8
        ) else ("  <- min energy" if result.total_energy_pj == best_energy else "")
        print(
            f"{arch.levels[0].capacity_kb:6.0f} {arch.vector_width:3d} "
            f"{result.total_energy_pj / 1e9:10.2f} "
            f"{result.total_cycles / 1e6:9.1f} "
            f"{area:10.2f} "
            f"{result.perf_per_watt / 1e9:9.0f}"
            f"{marker}"
        )

    searched = sum(s.searched for s in stats)
    recalled = sum(s.memo_hits + s.disk_hits + s.dedup_hits for s in stats)
    print(f"\nEngine: {searched} layer searches run, {recalled} recalled "
          f"from caches/dedup.")
    if not args.no_disk_cache:
        print(f"Rerun to recall every configuration from {config.cache_dir}.")
    else:
        print("Disk cache disabled: a rerun repeats the full search.")

    print("\nLarger L2s buy little once the optimizer pins a data type "
          "on-chip; wider vectors amortise L0 reads but idle on narrow-K "
          "layers — the codesign trade-offs the paper's Section III maps.")


if __name__ == "__main__":
    main()
