"""Quickstart: optimise one 3D-CNN layer for the Morph accelerator.

Runs the paper's software flow (Section V) on C3D's layer3a through the
:class:`repro.Session` front door: enumerate configurations, pick the
energy-optimal one, inspect the result, and lower it to the hardware
programming state (bank assignments + FSM programs).

Run:  python examples/quickstart.py
"""

from repro import OptimizerOptions, Session, morph
from repro.optimizer.schedule import lower


def main() -> None:
    arch = morph()
    print(arch.describe())
    print()

    with Session() as session:
        layer = session.build_network("c3d").layer_named("layer3a")
        print(f"Optimising: {layer.describe()}")
        print(f"  {layer.maccs / 1e9:.2f} GMACs, "
              f"{layer.footprint_bytes() / 1e6:.2f} MB input+weight footprint")
        print()

        result = session.optimize_layer(layer, arch, OptimizerOptions.fast())
    best = result.best

    print(f"Searched {result.evaluated} configurations; best by energy:")
    print(f"  dataflow : {best.dataflow.describe()}")
    print(f"  energy   : {best.total_energy_pj / 1e6:.1f} uJ "
          f"({best.total_energy_pj / layer.maccs:.2f} pJ/MAC)")
    print(f"  runtime  : {best.cycles / 1e6:.2f} Mcycles at "
          f"{best.performance.utilization:.0%} PE utilisation")
    print(f"  DRAM     : {best.traffic.dram_total_bytes / 1e6:.2f} MB moved")
    print()

    components = best.energy.figure9_components()
    print("Energy by component (the paper's Figure 9 split):")
    for name, pj in components.items():
        bar = "#" * max(1, round(40 * pj / max(components.values())))
        print(f"  {name:8s} {pj / 1e6:9.1f} uJ  {bar}")
    print()

    program = lower(best)
    print("Layer-start hardware state (Section V-E lowering):")
    for index, assignment in enumerate(program.bank_assignments):
        pretty = {dt.value: banks for dt, banks in (assignment or {}).items()}
        print(f"  L{2 - index} bank assignment: {pretty}")
    outer_fsm = program.boundary_programs[0]
    print(f"  DRAM->L2 FSM: {outer_fsm.fsm.total_states} states over loops "
          f"{[d.value for d in outer_fsm.dims]} (bounds {outer_fsm.bounds})")
    print(f"  PE multicast mask fanout: {program.pe_mask.fanout} "
          f"(last round: {program.last_round_mask.fanout})")


if __name__ == "__main__":
    main()
