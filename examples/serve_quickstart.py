"""Serving quickstart: optimization-as-a-service over one Session.

Starts a :class:`repro.ServeEngine` via :meth:`repro.Session.serve` and
drives it the way a scheduling service would: several tenants submit
overlapping networks concurrently, one client streams per-layer results
as they land, and one client attaches a deadline so it gets the best
configuration found within its latency SLO (marked ``budget_exhausted``
and **never cached**, so a later unbounded request re-searches).

Concurrent requests for the same layer signature coalesce onto a single
engine search — watch ``coalesce_rate`` in the final metrics — and every
served result is bit-identical to calling
:meth:`repro.Session.optimize_network` directly.

Run:  python examples/serve_quickstart.py
"""

import asyncio

from repro import OptimizerOptions, ServeRequest, Session, morph


async def main() -> None:
    session = Session(use_cache=True)
    arch = morph()
    options = OptimizerOptions.fast()

    async with session.serve(max_workers=4, tenant_rate=50.0) as serve:
        # --- Three tenants, overlapping traffic -----------------------
        # c3d twice (identical signatures: the second request coalesces
        # onto the first's in-flight searches) plus two_stream.
        requests = [
            ServeRequest(network="c3d", tenant="video-team",
                         arch=arch, options=options),
            ServeRequest(network="c3d", tenant="batch-jobs",
                         arch=arch, options=options),
            ServeRequest(network="two_stream", tenant="research",
                         arch=arch, options=options),
        ]
        served = await asyncio.gather(
            *[serve.submit(request) for request in requests]
        )
        for result in served:
            print(
                f"{result.tenant:>11}  {result.network_name:<11}"
                f"  {result.result.total_energy_pj / 1e6:8.2f} uJ"
                f"  in {result.latency_ms:7.1f} ms"
            )

        # --- Streaming: per-layer results as the search lands ---------
        print("\nstreaming two_stream layer by layer:")
        async for event in serve.stream(
            ServeRequest(network="two_stream", tenant="research",
                         arch=arch, options=options)
        ):
            if event.kind == "layer":
                layer = event.layer_result
                print(
                    f"  [{event.index + 1}/{event.total}] "
                    f"{layer.layer.name:<12} "
                    f"{layer.best.total_energy_pj / 1e6:8.3f} uJ"
                )

        # --- A latency SLO: best answer within the deadline -----------
        # The budget maps onto the engine's anytime search; a result cut
        # short is flagged and carries a bound_gap, and is never cached.
        slo = await serve.submit(
            ServeRequest(network="c3d", tenant="interactive",
                         arch=arch, options=options, deadline_ms=150.0)
        )
        print(
            f"\ndeadline 150 ms: {slo.result.total_energy_pj / 1e6:.2f} uJ"
            f"  (budget_exhausted={slo.budget_exhausted})"
        )

        metrics = serve.metrics()
        print(f"\n{metrics.describe()}")

    session.close()


if __name__ == "__main__":
    asyncio.run(main())
